// Package telemetry is the unified observability layer: a concurrency-safe
// metrics registry (sharded counters, gauges, a reusable log-scale
// histogram), a bounded per-decision trace recorder with JSONL and Chrome
// trace-event exporters, and HTTP exposition (Prometheus-style text plus a
// JSON snapshot, with net/http/pprof wired alongside).
//
// The design contract is zero overhead when disabled and lock-free hot
// paths when enabled:
//
//   - Every instrumented call site goes through a *Sink whose methods are
//     nil-receiver safe; a nil sink reduces each site to a pointer test
//     (no allocation, no atomic, no branch misprediction of note — the
//     alloc-pin tests enforce 0 allocs/op).
//   - Counters are sharded across cache-line-padded cells (one per worker
//     goroutine plus one for the event loop) and merged on read, so
//     concurrent workers never contend on a shared line.
//   - The histogram is the orchestrator's quarter-octave log-scale
//     latencyHist, promoted: 256 fixed buckets over int64 values
//     (nanoseconds in practice), O(1) atomic adds, constant memory for
//     arbitrarily long runs, bucket-lower-bound percentiles.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric dimension (e.g. region="2").
type Label struct {
	Key   string
	Value string
}

// MetricType distinguishes the registry's instrument kinds.
type MetricType int

const (
	CounterType MetricType = iota
	GaugeType
	HistogramType
)

func (t MetricType) String() string {
	switch t {
	case CounterType:
		return "counter"
	case GaugeType:
		return "gauge"
	case HistogramType:
		return "histogram"
	default:
		return "unknown"
	}
}

// counterCell is one shard of a Counter, padded to its own cache line so
// concurrent workers never false-share.
type counterCell struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing sharded counter: writers pick a
// shard (their worker index) and add without any coordination; readers merge
// all cells. Adds are lock-free and allocation-free.
type Counter struct {
	cells []counterCell
}

// Add increments the counter by d on the given shard. Shard indices wrap,
// so any non-negative index is safe regardless of the configured width.
func (c *Counter) Add(shard int, d int64) {
	c.cells[uint(shard)%uint(len(c.cells))].v.Add(d)
}

// Inc is Add(shard, 1).
func (c *Counter) Inc(shard int) { c.Add(shard, 1) }

// Value merges all shards.
func (c *Counter) Value() int64 {
	var total int64
	for i := range c.cells {
		total += c.cells[i].v.Load()
	}
	return total
}

// Gauge is a last-write-wins float64 value (atomic bit store).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value loads the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histBuckets is the fixed bucket count of Histogram: 64 octaves × 4
// quarter-octave sub-buckets over the int64 range.
const histBuckets = 256

// Histogram is the promoted orchestrator latencyHist: a fixed-size
// log-scale histogram with quarter-octave buckets over non-negative int64
// values (nanoseconds in practice). Adds are O(1) atomics; memory is
// constant for arbitrarily long runs; percentiles report the lower bound of
// the holding bucket (≈±12% resolution). Bucket 0 holds the sub-2ns samples
// — including exact zeros — and reads back as 0, not as 1ns.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	n      atomic.Int64
	sum    atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a sample to its quarter-octave bucket. This is exactly
// the orchestrator's original latencyHist bucketing (the parity test in
// registry_test.go pins it against a verbatim copy).
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	ns := uint64(v)
	e := bits.Len64(ns) - 1
	frac := 0
	if e >= 2 {
		frac = int((ns >> uint(e-2)) & 3)
	}
	idx := e*4 + frac
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// bucketLowerBound is the inverse mapping: the smallest value landing in
// bucket i (0 for bucket 0).
func bucketLowerBound(i int) int64 {
	if i == 0 {
		return 0
	}
	e, frac := i/4, uint64(i%4)
	base := uint64(1) << uint(e)
	if e < 2 {
		frac = 0
	}
	return int64(base + base*frac/4)
}

// Observe records one sample. Negative samples clamp into bucket 0 (they
// do not occur on the instrumented paths).
func (h *Histogram) Observe(v int64) {
	h.counts[bucketIndex(v)].Add(1)
	h.n.Add(1)
	if v > 0 {
		h.sum.Add(v)
	}
}

// ObserveDuration records a duration sample in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Nanoseconds()) }

// Count returns the number of samples recorded.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of all positive samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Percentile returns the lower bound of the bucket holding the q-quantile,
// or 0 when the histogram is empty. A histogram holding only zero samples
// reads 0: bucket 0's lower bound, not the first real bucket's upper half.
// Concurrent with writers the answer is a consistent-enough estimate;
// quiesced it is exact (to bucket resolution).
func (h *Histogram) Percentile(q float64) int64 {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	target := int64(q*float64(n) + 0.5)
	if target < 1 {
		target = 1
	}
	var acc int64
	for i := range h.counts {
		c := h.counts[i].Load()
		acc += c
		if c > 0 && acc >= target {
			return bucketLowerBound(i)
		}
	}
	return 0
}

// PercentileDuration is Percentile as a time.Duration.
func (h *Histogram) PercentileDuration(q float64) time.Duration {
	return time.Duration(h.Percentile(q))
}

// Quantiles returns the readings for every quantile in qs from a single
// bucket scan — Percentile re-walks all 256 buckets per call, so batch
// reads (p50/p90/p99 fills) should come here instead. The result aligns
// with qs (any order); each entry equals Percentile(q) exactly (the
// parity test pins this).
func (h *Histogram) Quantiles(qs []float64) []int64 {
	out := make([]int64, len(qs))
	n := h.n.Load()
	if n == 0 || len(qs) == 0 {
		return out
	}
	var counts [histBuckets]int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	quantilesFromCounts(&counts, n, qs, out)
	return out
}

// QuantilesDuration is Quantiles as time.Durations.
func (h *Histogram) QuantilesDuration(qs []float64) []time.Duration {
	vs := h.Quantiles(qs)
	out := make([]time.Duration, len(vs))
	for i, v := range vs {
		out[i] = time.Duration(v)
	}
	return out
}

// quantilesFromCounts resolves every quantile in qs over a quarter-octave
// bucket array in one pass, writing bucket lower bounds into out (aligned
// with qs). n is the authoritative sample count (it may exceed the sum of
// counts when writers race a live histogram — the same slack Percentile
// accepts). Shared by Histogram.Quantiles and the windowed sampler's
// per-window delta buckets.
func quantilesFromCounts(counts *[histBuckets]int64, n int64, qs []float64, out []int64) {
	if n <= 0 {
		return
	}
	// Process targets in ascending order so one cumulative walk serves all.
	order := make([]int, len(qs))
	targets := make([]int64, len(qs))
	for i, q := range qs {
		order[i] = i
		t := int64(q*float64(n) + 0.5)
		if t < 1 {
			t = 1
		}
		targets[i] = t
	}
	sort.Slice(order, func(a, b int) bool { return targets[order[a]] < targets[order[b]] })
	var acc int64
	j := 0
	for i := 0; i < histBuckets && j < len(order); i++ {
		c := counts[i]
		if c == 0 {
			continue
		}
		acc += c
		for j < len(order) && acc >= targets[order[j]] {
			out[order[j]] = bucketLowerBound(i)
			j++
		}
	}
}

// metric is one registered instrument with its identity.
type metric struct {
	name   string
	help   string
	labels []Label
	key    string // name + rendered labels
	typ    MetricType

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// labelString renders {k="v",...} (empty string for no labels).
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Registry is a get-or-create store of named instruments. Registration
// takes a lock; the returned handles are lock-free. Instruments are
// identified by (name, labels); registering the same identity twice returns
// the same handle, and re-registering it as a different type panics (a
// programmer error, like a duplicate expvar).
type Registry struct {
	mu      sync.Mutex
	shards  int
	metrics []*metric
	byKey   map[string]*metric
}

// NewRegistry builds a registry whose counters carry `shards` cells
// (typically workers+1; minimum 1).
func NewRegistry(shards int) *Registry {
	if shards < 1 {
		shards = 1
	}
	return &Registry{shards: shards, byKey: make(map[string]*metric)}
}

// Shards returns the counter cell count.
func (r *Registry) Shards() int { return r.shards }

func (r *Registry) getOrCreate(name, help string, typ MetricType, labels []Label) *metric {
	key := name + labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		if m.typ != typ {
			panic(fmt.Sprintf("telemetry: metric %s re-registered as %s (was %s)", key, typ, m.typ))
		}
		return m
	}
	m := &metric{name: name, help: help, labels: append([]Label(nil), labels...), key: key, typ: typ}
	switch typ {
	case CounterType:
		m.counter = &Counter{cells: make([]counterCell, r.shards)}
	case GaugeType:
		m.gauge = &Gauge{}
	case HistogramType:
		m.hist = NewHistogram()
	}
	r.metrics = append(r.metrics, m)
	r.byKey[key] = m
	return m
}

// Counter returns the counter registered under (name, labels), creating it
// on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.getOrCreate(name, help, CounterType, labels).counter
}

// Gauge returns the gauge registered under (name, labels).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.getOrCreate(name, help, GaugeType, labels).gauge
}

// Histogram returns the histogram registered under (name, labels).
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	return r.getOrCreate(name, help, HistogramType, labels).hist
}

// sortedMetrics snapshots the registered instruments ordered by
// (name, labels) so families are contiguous in exposition.
func (r *Registry) sortedMetrics() []*metric {
	r.mu.Lock()
	ms := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return ms[i].key < ms[j].key
	})
	return ms
}

// WriteProm renders the registry in the Prometheus text exposition format:
// one HELP/TYPE header per family, counters and gauges as plain samples,
// histograms as cumulative {le=...} buckets (non-empty buckets plus +Inf)
// with _sum and _count.
func (r *Registry) WriteProm(w io.Writer) error {
	lastName := ""
	for _, m := range r.sortedMetrics() {
		if m.name != lastName {
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.typ); err != nil {
				return err
			}
			lastName = m.name
		}
		ls := labelString(m.labels)
		switch m.typ {
		case CounterType:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", m.name, ls, m.counter.Value()); err != nil {
				return err
			}
		case GaugeType:
			if _, err := fmt.Fprintf(w, "%s%s %g\n", m.name, ls, m.gauge.Value()); err != nil {
				return err
			}
		case HistogramType:
			if err := writePromHistogram(w, m, ls); err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromHistogram emits the cumulative bucket series of one histogram.
// Bucket le bounds are the quarter-octave upper bounds in the histogram's
// native unit (nanoseconds on the latency series).
func writePromHistogram(w io.Writer, m *metric, ls string) error {
	inner := strings.TrimSuffix(strings.TrimPrefix(ls, "{"), "}")
	withLe := func(le string) string {
		if inner == "" {
			return fmt.Sprintf("{le=%q}", le)
		}
		return fmt.Sprintf("{%s,le=%q}", inner, le)
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		c := m.hist.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		le := fmt.Sprintf("%d", bucketLowerBound(i+1))
		if i == histBuckets-1 {
			le = "+Inf"
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, withLe(le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, withLe("+Inf"), m.hist.Count()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", m.name, ls, m.hist.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.name, ls, m.hist.Count())
	return err
}

// MetricSnapshot is one instrument's state in the JSON snapshot.
type MetricSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Type   string            `json:"type"`
	// Value carries counter and gauge readings.
	Value float64 `json:"value"`
	// Count/Sum/P50/P99 carry histogram readings (native unit).
	Count int64 `json:"count,omitempty"`
	Sum   int64 `json:"sum,omitempty"`
	P50   int64 `json:"p50,omitempty"`
	P99   int64 `json:"p99,omitempty"`
}

// Snapshot returns every instrument's current reading.
func (r *Registry) Snapshot() []MetricSnapshot {
	ms := r.sortedMetrics()
	out := make([]MetricSnapshot, 0, len(ms))
	for _, m := range ms {
		s := MetricSnapshot{Name: m.name, Type: m.typ.String()}
		if len(m.labels) > 0 {
			s.Labels = make(map[string]string, len(m.labels))
			for _, l := range m.labels {
				s.Labels[l.Key] = l.Value
			}
		}
		switch m.typ {
		case CounterType:
			s.Value = float64(m.counter.Value())
		case GaugeType:
			s.Value = m.gauge.Value()
		case HistogramType:
			s.Count = m.hist.Count()
			s.Sum = m.hist.Sum()
			ps := m.hist.Quantiles([]float64{0.50, 0.99})
			s.P50, s.P99 = ps[0], ps[1]
		}
		out = append(out, s)
	}
	return out
}

// WriteJSON renders the snapshot as a JSON document.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Metrics []MetricSnapshot `json:"metrics"`
	}{Metrics: r.Snapshot()})
}
