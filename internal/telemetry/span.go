package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Span is a lightweight handle on one in-flight traced operation. It is a
// plain value (no heap allocation on start or end): starting a span on a
// nil sink returns the zero Span, and ending a zero Span is a pointer test
// — the same disabled-path contract as every other Sink method, pinned by
// the alloc tests. A span only enters the ring when End/EndArg is called,
// so abandoning a handle (e.g. a heal span for a non-incident fault) costs
// nothing and records nothing.
type Span struct {
	sink   *Sink
	id     uint64
	parent uint64
	track  int32
	name   string
	cat    string
	start  time.Time
}

// ID returns the span's causal identity (0 for a disabled/zero span).
func (sp Span) ID() uint64 { return sp.id }

// Active reports whether the span belongs to an enabled sink.
func (sp Span) Active() bool { return sp.sink != nil }

// End closes the span and appends it to the span ring.
func (sp Span) End() { sp.EndArg(0) }

// EndArg closes the span carrying a small integer payload (typically the
// trigger session or an orphan count).
func (sp Span) EndArg(arg int64) {
	if sp.sink == nil {
		return
	}
	sp.sink.appendSpan(SpanRecord{
		ID:      sp.id,
		Parent:  sp.parent,
		Name:    sp.name,
		Cat:     sp.cat,
		Track:   sp.track,
		StartNs: sp.start.UnixNano(),
		DurNs:   time.Since(sp.start).Nanoseconds(),
		Arg:     arg,
	})
}

// StartRoot opens a top-level span on an explicit track. Tracks partition
// the Chrome export into serially-consistent lanes: spans on the same track
// nest by time containment, so concurrent operations must use distinct
// tracks (the orchestrator uses track 0 for the serial control/heal path,
// 1..99 for pipelined event lanes, 100+worker for task lanes, 200+ for
// dist).
func (s *Sink) StartRoot(name, cat string, track int32) Span {
	if s == nil {
		return Span{}
	}
	return Span{
		sink:  s,
		id:    atomic.AddUint64(&s.spanSeq, 1),
		track: track,
		name:  name,
		cat:   cat,
		start: time.Now(),
	}
}

// StartSpan opens a child span under parent, inheriting its category and
// track. With a zero parent (disabled sink upstream, or no causal context)
// it degrades to a root span on track 0 — but returns the zero Span when
// the receiver itself is nil.
func (s *Sink) StartSpan(name string, parent Span) Span {
	if s == nil {
		return Span{}
	}
	return Span{
		sink:   s,
		id:     atomic.AddUint64(&s.spanSeq, 1),
		parent: parent.id,
		track:  parent.track,
		name:   name,
		cat:    parent.cat,
		start:  time.Now(),
	}
}

// EmitSpan records an already-measured interval retroactively — the bridge
// that promotes pre-existing phase timers (the worker pool's taskProbe) into
// spans without re-timing them. It returns the recorded span so further
// children can parent to it.
func (s *Sink) EmitSpan(name, cat string, parent Span, track int32, start time.Time, durNs, arg int64) Span {
	if s == nil {
		return Span{}
	}
	sp := Span{
		sink:   s,
		id:     atomic.AddUint64(&s.spanSeq, 1),
		parent: parent.id,
		track:  track,
		name:   name,
		cat:    cat,
		start:  start,
	}
	s.appendSpan(SpanRecord{
		ID:      sp.id,
		Parent:  sp.parent,
		Name:    name,
		Cat:     cat,
		Track:   track,
		StartNs: start.UnixNano(),
		DurNs:   durNs,
		Arg:     arg,
	})
	return sp
}

// appendSpan routes a finished span into the ring and counts overwrites.
func (s *Sink) appendSpan(rec SpanRecord) {
	if s.spans.Append(rec) {
		s.spanDropped.Inc(s.eventShard)
	}
}

// Spans exposes the span ring (nil when disabled).
func (s *Sink) Spans() *SpanRing {
	if s == nil {
		return nil
	}
	return s.spans
}

// SpanRecord is one finished span as held in the ring and exported to
// JSONL. Parent is 0 for roots; Track is the export lane (see StartRoot).
type SpanRecord struct {
	// Seq is the record's position in the full span stream (assigned by the
	// ring; stable even after it wraps).
	Seq    int64  `json:"seq"`
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	Cat    string `json:"cat,omitempty"`
	Track  int32  `json:"track"`
	// StartNs is the wall-clock start (Unix nanoseconds); DurNs the
	// duration.
	StartNs int64 `json:"start_ns"`
	DurNs   int64 `json:"dur_ns"`
	// Arg carries a small span-specific payload (trigger session, orphan
	// count, attempt number).
	Arg int64 `json:"arg,omitempty"`
}

// SpanRing is the bounded span buffer, mirroring Recorder: mutex-guarded
// appends (span ends are off the per-candidate hot path), oldest records
// overwritten and counted as dropped once full.
type SpanRing struct {
	mu   sync.Mutex
	buf  []SpanRecord
	next int64 // total spans ever appended
}

// NewSpanRing builds a ring holding the last `capacity` spans (minimum 1).
func NewSpanRing(capacity int) *SpanRing {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanRing{buf: make([]SpanRecord, 0, capacity)}
}

// Append stores one span, assigning its Seq, and reports whether an older
// span was overwritten.
func (r *SpanRing) Append(rec SpanRecord) (overwrote bool) {
	r.mu.Lock()
	rec.Seq = r.next
	r.next++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[rec.Seq%int64(cap(r.buf))] = rec
		overwrote = true
	}
	r.mu.Unlock()
	return overwrote
}

// Len returns the number of spans currently held.
func (r *SpanRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Total returns the number of spans ever appended.
func (r *SpanRing) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Dropped returns how many old spans the ring overwrote.
func (r *SpanRing) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next - int64(len(r.buf))
}

// Spans returns the held spans oldest-first.
func (r *SpanRing) Spans() []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanRecord, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) || r.next == int64(len(r.buf)) {
		return append(out, r.buf...)
	}
	start := r.next % int64(cap(r.buf))
	out = append(out, r.buf[start:]...)
	return append(out, r.buf[:start]...)
}

// WriteJSONL streams the held spans oldest-first, one JSON object per line
// — the vcsim -span-out format and the shape cmd/vcreport ingests.
func (r *SpanRing) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, rec := range r.Spans() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// WriteChromeTrace renders the sink's decision records AND spans as one
// Chrome trace-event file: decision records keep their PR 6 layout on pid 0
// (one tid per region), spans land on pid 1 with tid = Track. Spans on the
// same track never overlap unless nested, so the complete-event ("X") time
// containment renders them as a causal flame graph — event → task
// snapshot/walk/commit → heal degrade/evict/re-home/re-balance → dist
// freeze/hop/commit. Parent/child identities ride along in args for
// programmatic consumers.
func (s *Sink) WriteChromeTrace(w io.Writer) error {
	if s == nil {
		return nil
	}
	recs := s.rec.Records()
	spans := s.spans.Spans()
	base := firstWall(recs)
	for _, sp := range spans {
		if base == 0 || (sp.StartNs != 0 && sp.StartNs < base) {
			base = sp.StartNs
		}
	}
	evs := make([]chromeEvent, 0, len(recs)+len(spans)+2)
	evs = append(evs,
		chromeEvent{Name: "process_name", Ph: "M", Pid: 0, Args: map[string]interface{}{"name": "decisions"}},
		chromeEvent{Name: "process_name", Ph: "M", Pid: 1, Args: map[string]interface{}{"name": "spans"}},
	)
	for _, rec := range recs {
		dur := float64(rec.LatencyNs) / 1e3
		if dur <= 0 {
			dur = 1
		}
		ev := chromeEvent{
			Name: rec.Kind,
			Cat:  "churn",
			Ph:   "X",
			Ts:   float64(rec.WallNs-base) / 1e3,
			Dur:  dur,
			Pid:  0,
			Tid:  rec.Region,
			Args: map[string]interface{}{
				"seq":       rec.Seq,
				"session":   rec.Session,
				"admitted":  rec.Admitted,
				"commits":   rec.Commits,
				"objective": rec.Objective,
			},
		}
		if rec.Class != "" {
			ev.Args["class"] = rec.Class
		}
		evs = append(evs, ev)
	}
	for _, sp := range spans {
		dur := float64(sp.DurNs) / 1e3
		if dur <= 0 {
			dur = 0.001 // keep sub-ns spans visible without breaking nesting
		}
		evs = append(evs, chromeEvent{
			Name: sp.Name,
			Cat:  sp.Cat,
			Ph:   "X",
			Ts:   float64(sp.StartNs-base) / 1e3,
			Dur:  dur,
			Pid:  1,
			Tid:  int(sp.Track),
			Args: map[string]interface{}{
				"id":     sp.ID,
				"parent": sp.Parent,
				"arg":    sp.Arg,
			},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: evs})
}
