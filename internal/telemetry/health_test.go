package telemetry

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"
)

// healthSink builds a sink with a 1s sampler window and one availability
// rule tight enough to fire from a handful of windows.
func healthSink(t *testing.T, rules []SLORule) *Sink {
	t.Helper()
	return New(Config{
		Workers: 2,
		Classes: []string{"interactive", "broadcast"},
		Sample:  &SamplerConfig{IntervalS: 1},
		SLO:     rules,
	})
}

// tightAvailability fires after 2 bad windows and resolves after 1 clean
// one, so short synthetic streams exercise both transitions.
func tightAvailability() []SLORule {
	return []SLORule{{
		Name:        "availability",
		Kind:        RuleAvailability,
		Budget:      0.01,
		FastWindows: 2,
		SlowWindows: 4,
		FireBurn:    10,
	}}
}

func TestSamplerWindowDeltas(t *testing.T) {
	s := healthSink(t, nil)
	sp := s.Sampler()
	if sp == nil {
		t.Fatal("sampler not built despite Config.Sample")
	}
	// Window 0: two commits, one drop; window 1: one conflict-heavy event.
	s.Record(DecisionRecord{TimeS: 0.2, Kind: "arrive", Admitted: true, Commits: 2, DelayMS: 100})
	s.Record(DecisionRecord{TimeS: 0.8, Kind: "arrive", Admitted: false})
	s.Record(DecisionRecord{TimeS: 1.5, Kind: "depart", Admitted: true, Commits: 1, Conflicts: 3, Rejects: 1})
	s.FlushSampler()

	ws := sp.Windows()
	if len(ws) != 2 {
		t.Fatalf("windows = %d, want 2", len(ws))
	}
	w0, w1 := ws[0], ws[1]
	if w0.Index != 0 || w0.Events != 2 || w0.Commits != 2 || w0.Arrivals != 2 || w0.Drops != 1 {
		t.Fatalf("window 0 deltas wrong: %+v", w0)
	}
	if w0.CommitsPerS != 2 {
		t.Fatalf("window 0 commits/s = %v, want 2", w0.CommitsPerS)
	}
	if w0.DropRatio != 0.5 {
		t.Fatalf("window 0 drop ratio = %v, want 0.5 (1 drop / 2 arrivals)", w0.DropRatio)
	}
	if w1.Index != 1 || w1.Departures != 1 || w1.Conflicts != 3 {
		t.Fatalf("window 1 deltas wrong: %+v", w1)
	}
	if w1.ConflictRatio != 0.75 {
		t.Fatalf("window 1 conflict ratio = %v, want 3/(1+3)", w1.ConflictRatio)
	}
	if w1.RejectRatio != 0.5 {
		t.Fatalf("window 1 reject ratio = %v, want 1/(1+1)", w1.RejectRatio)
	}
	// The 100ms delay landed in window 0 under the default class mapping
	// (session 0 → class 0 = interactive).
	if len(w0.Classes) != 1 || w0.Classes[0].Class != "interactive" || w0.Classes[0].DelayN != 1 {
		t.Fatalf("window 0 classes wrong: %+v", w0.Classes)
	}
	if got, want := w0.Classes[0].P99US, bucketLowerBound(bucketIndex(100_000)); got != want {
		t.Fatalf("window 0 p99 = %d, want bucket lower bound %d", got, want)
	}
}

func TestSamplerDeltasNotCumulative(t *testing.T) {
	s := healthSink(t, nil)
	for i := 0; i < 5; i++ {
		s.Record(DecisionRecord{TimeS: float64(i) + 0.5, Kind: "arrive", Admitted: true, Commits: 1})
	}
	s.FlushSampler()
	for _, w := range s.Sampler().Windows() {
		if w.Commits != 1 {
			t.Fatalf("window %d commits = %d: cumulative leak, want per-window delta 1", w.Index, w.Commits)
		}
	}
}

func TestSamplerGapClosesEmptyWindows(t *testing.T) {
	s := healthSink(t, nil)
	s.Record(DecisionRecord{TimeS: 0.5, Kind: "arrive", Admitted: true})
	s.Record(DecisionRecord{TimeS: 4.5, Kind: "arrive", Admitted: true})
	s.FlushSampler()
	ws := s.Sampler().Windows()
	if len(ws) != 5 {
		t.Fatalf("windows = %d, want 5 (indices 0..4 with 1..3 empty)", len(ws))
	}
	for _, w := range ws[1:4] {
		if w.Events != 0 || w.Arrivals != 0 {
			t.Fatalf("gap window %d not empty: %+v", w.Index, w)
		}
	}
}

func TestSamplerIncidentInheritance(t *testing.T) {
	s := healthSink(t, nil)
	s.Record(DecisionRecord{TimeS: 0.5, Kind: "region-outage", Incident: 3, Orphans: 2, EvacRejects: 2})
	s.Record(DecisionRecord{TimeS: 2.5, Kind: "arrive", Admitted: true})
	s.FlushSampler()
	ws := s.Sampler().Windows()
	if len(ws) != 3 {
		t.Fatalf("windows = %d, want 3", len(ws))
	}
	for _, w := range ws {
		if w.Incident != 3 || w.IncidentKind != "region-outage" {
			t.Fatalf("window %d lost the incident marker: %+v", w.Index, w)
		}
	}
	if ws[0].Faults != 1 || ws[0].Orphans != 2 || ws[0].EvacRejects != 2 {
		t.Fatalf("fault window deltas wrong: %+v", ws[0])
	}
	if ws[0].DropRatio != 1 {
		t.Fatalf("fault window drop ratio = %v, want 1 (2 evac rejects / 2 orphans)", ws[0].DropRatio)
	}
}

func TestSamplerRingWrap(t *testing.T) {
	s := New(Config{Workers: 1, Sample: &SamplerConfig{IntervalS: 1, Capacity: 4}})
	for i := 0; i < 10; i++ {
		s.Record(DecisionRecord{TimeS: float64(i) + 0.5, Kind: "arrive", Admitted: true})
	}
	s.FlushSampler()
	sp := s.Sampler()
	if sp.TotalWindows() != 10 {
		t.Fatalf("total windows = %d, want 10", sp.TotalWindows())
	}
	ws := sp.Windows()
	if len(ws) != 4 {
		t.Fatalf("held windows = %d, want capacity 4", len(ws))
	}
	for i, w := range ws {
		if w.Index != int64(6+i) {
			t.Fatalf("held window %d has index %d, want %d (oldest-first after wrap)", i, w.Index, 6+i)
		}
	}
	if tail := sp.Tail(2); len(tail) != 2 || tail[1].Index != 9 {
		t.Fatalf("Tail(2) = %+v, want the last two windows", tail)
	}
}

func TestSamplerWriteJSONShape(t *testing.T) {
	s := healthSink(t, nil)
	s.Record(DecisionRecord{TimeS: 0.5, Kind: "arrive", Admitted: true, Commits: 1})
	s.FlushSampler()
	var buf bytes.Buffer
	if err := s.Sampler().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc TimeseriesDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("timeseries doc not valid JSON: %v", err)
	}
	if doc.IntervalS != 1 || doc.WindowsTotal != 1 || len(doc.Windows) != 1 {
		t.Fatalf("doc shape wrong: %+v", doc)
	}
	// Determinism contract: no wall-clock fields in the document.
	if strings.Contains(buf.String(), "wall") {
		t.Fatal("timeseries doc leaks wall-clock fields")
	}
}

func TestQuantilesMatchesRepeatedPercentile(t *testing.T) {
	h := NewRegistry(2).Histogram("parity_ns", "parity")
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		h.Observe(rng.Int63n(10_000_000) + 1)
	}
	qs := []float64{0.01, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0}
	batch := h.Quantiles(qs)
	for i, q := range qs {
		if want := h.Percentile(q); batch[i] != want {
			t.Fatalf("Quantiles(%v)[%d] = %d, Percentile(%v) = %d", qs, i, batch[i], q, want)
		}
	}
	// Unsorted query order must not change the answers.
	rev := []float64{0.99, 0.50, 0.01}
	got := h.Quantiles(rev)
	for i, q := range rev {
		if want := h.Percentile(q); got[i] != want {
			t.Fatalf("unsorted Quantiles[%d] = %d, Percentile(%v) = %d", i, got[i], q, want)
		}
	}
	if d := h.QuantilesDuration([]float64{0.5}); d[0] != time.Duration(h.Percentile(0.5)) {
		t.Fatalf("QuantilesDuration = %v, want %v", d[0], time.Duration(h.Percentile(0.5)))
	}
	var empty Histogram
	for _, v := range empty.Quantiles(qs) {
		if v != 0 {
			t.Fatal("empty histogram quantiles must be 0")
		}
	}
}

// alertStream drives count windows through the sink, with drop windows
// (indices in bad) taking one dropped arrival and one admitted arrival.
func alertStream(s *Sink, count int, bad map[int]bool) {
	for i := 0; i < count; i++ {
		ts := float64(i) + 0.5
		s.Record(DecisionRecord{TimeS: ts, Kind: "arrive", Admitted: true, Session: 1})
		if bad[i] {
			s.Record(DecisionRecord{TimeS: ts + 0.1, Kind: "arrive", Admitted: false, Session: 2})
		}
	}
	s.FlushSampler()
}

func TestAlertEngineFireAndResolve(t *testing.T) {
	s := healthSink(t, tightAvailability())
	// Windows 0-4 clean, 5-8 dropping (50% >> 10×1% budget), 9-14 clean.
	bad := map[int]bool{5: true, 6: true, 7: true, 8: true}
	alertStream(s, 15, bad)

	evs := s.Alerts().Events()
	if len(evs) != 2 {
		t.Fatalf("events = %+v, want one fire + one resolve", evs)
	}
	fire, res := evs[0], evs[1]
	// Window 5 is the first bad one: fast burn over windows 4-5 is
	// (1/3)/0.01 ≈ 33, slow over 2-5 is (1/5)/0.01 = 20, both ≥ 10.
	if fire.State != "fire" || fire.Rule != "availability" || fire.Window != 5 {
		t.Fatalf("fire event wrong: %+v", fire)
	}
	if fire.FastBurn < 10 || fire.SlowBurn < 10 {
		t.Fatalf("fire burns too low: %+v", fire)
	}
	if res.State != "resolve" || res.Window != 10 {
		t.Fatalf("resolve event wrong: %+v (fast window clears two windows after last drop)", res)
	}
	st := s.Alerts().Summary()
	if len(st) != 1 || st[0].Fires != 1 || st[0].Resolves != 1 || st[0].Firing {
		t.Fatalf("summary wrong: %+v", st)
	}
	if st[0].FiringWindows != 5 || st[0].FiringS != 5 {
		t.Fatalf("firing windows = %d (%.0fs), want 5 (windows 5-9)", st[0].FiringWindows, st[0].FiringS)
	}
	// Transition counters and the firing gauge follow the timeline.
	var prom bytes.Buffer
	if err := s.Registry().WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`vconf_alert_transitions_total{rule="availability",state="fire"} 1`,
		`vconf_alert_transitions_total{rule="availability",state="resolve"} 1`,
		"vconf_alerts_firing 0",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Fatalf("exposition missing %q", want)
		}
	}
}

func TestAlertTimelineDeterministic(t *testing.T) {
	render := func() string {
		s := healthSink(t, tightAvailability())
		alertStream(s, 20, map[int]bool{3: true, 4: true, 5: true, 11: true, 12: true})
		var buf bytes.Buffer
		if err := s.Alerts().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("same stream produced different alert timelines:\n%s\nvs\n%s", a, b)
	}
}

func TestAlertDelayRule(t *testing.T) {
	s := healthSink(t, []SLORule{{
		Name: "interactive-delay", Kind: RuleDelay, Class: "interactive",
		TargetUS: 50_000, Budget: 0.05, FastWindows: 2, SlowWindows: 4, FireBurn: 10,
	}})
	// Every window's delay observation (class 0 = interactive) sits at
	// 400ms, far above the 50ms target: burn = (1/1)/0.05 = 20 ≥ 10.
	for i := 0; i < 4; i++ {
		s.Record(DecisionRecord{TimeS: float64(i) + 0.5, Kind: "arrive", Admitted: true, DelayMS: 400})
	}
	s.FlushSampler()
	evs := s.Alerts().Events()
	if len(evs) != 1 || evs[0].State != "fire" || evs[0].Window != 0 {
		t.Fatalf("delay rule events = %+v, want one fire at window 0 (burn 20 ≥ 10 immediately)", evs)
	}
}

func TestAlertEventCorrelatesIncident(t *testing.T) {
	s := healthSink(t, tightAvailability())
	s.Record(DecisionRecord{TimeS: 0.5, Kind: "region-outage", Incident: 7, Orphans: 2, EvacRejects: 2})
	alertStream(s, 4, map[int]bool{1: true, 2: true})
	evs := s.Alerts().Events()
	if len(evs) == 0 {
		t.Fatal("no alert fired")
	}
	if evs[0].Incident != 7 || evs[0].IncidentKind != "region-outage" {
		t.Fatalf("fire event lost incident correlation: %+v", evs[0])
	}
}

func TestSLORuleValidation(t *testing.T) {
	bad := []SLORule{
		{Kind: RuleAvailability},                                  // no name
		{Name: "x", Kind: "latency"},                              // unknown kind
		{Name: "x", Kind: RuleDelay},                              // delay without target
		{Name: "x", Kind: RuleAvailability, Budget: 1.5},          // budget > 1
		{Name: "x", Kind: RuleDelay, TargetUS: 1, Budget: -0.001}, // negative budget
	}
	for i, r := range bad {
		if err := r.withDefaults().Validate(); err == nil && i != 3 && i != 4 {
			t.Fatalf("rule %d (%+v) validated", i, r)
		}
	}
	// New must panic on an invalid rule — programmer error, not data.
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted an invalid SLO rule")
		}
	}()
	New(Config{Workers: 1, SLO: []SLORule{{Name: "x", Kind: "nope"}}})
}

func TestDefaultSLORules(t *testing.T) {
	rules := DefaultSLORules([]string{"interactive", "broadcast"},
		map[string]int64{"interactive": 250_000})
	if len(rules) != 2 {
		t.Fatalf("rules = %+v, want availability + interactive-delay only", rules)
	}
	if rules[0].Kind != RuleAvailability || rules[1].Name != "interactive-delay" {
		t.Fatalf("rule shape wrong: %+v", rules)
	}
	for _, r := range rules {
		if err := r.withDefaults().Validate(); err != nil {
			t.Fatalf("default rule invalid: %v", err)
		}
	}
}

func TestFlightTriggerAndIncidentDedupe(t *testing.T) {
	s := healthSink(t, nil)
	s.Record(DecisionRecord{TimeS: 0.5, Kind: "region-outage", Incident: 1, Orphans: 2})
	s.TriggerFlight("fault", "region-outage: 2 orphans")
	s.TriggerFlight("evac-reject", "re-trigger on the same incident")
	s.Record(DecisionRecord{TimeS: 1.5, Kind: "agent-fail", Incident: 2})
	s.TriggerFlight("fault", "agent-fail")

	dumps := s.Flight().Dumps()
	if len(dumps) != 2 {
		t.Fatalf("dumps = %d, want 2 (fault re-triggers dedupe per incident)", len(dumps))
	}
	d := dumps[0]
	if d.Trigger != "fault" || d.Incident != 1 || d.IncidentKind != "region-outage" || d.TimeS != 0.5 {
		t.Fatalf("dump 0 wrong: %+v", d)
	}
	if len(d.Records) == 0 {
		t.Fatal("dump carries no decision records")
	}
	if dumps[1].Incident != 2 {
		t.Fatalf("dump 1 incident = %d, want 2", dumps[1].Incident)
	}
	// Alert/invariant triggers are not deduped by incident.
	s.TriggerFlight("invariant", "ledger off by one")
	s.TriggerFlight("invariant", "still off")
	if n := len(s.Flight().Dumps()); n != 4 {
		t.Fatalf("dumps after invariant re-triggers = %d, want 4", n)
	}
}

func TestFlightMaxDumpsAndDropCount(t *testing.T) {
	s := New(Config{Workers: 1, Flight: &FlightConfig{MaxDumps: 2}})
	for i := 0; i < 5; i++ {
		s.TriggerFlight("invariant", "overflow probe")
	}
	fl := s.Flight()
	if len(fl.Dumps()) != 2 || fl.Dropped() != 3 {
		t.Fatalf("dumps=%d dropped=%d, want 2/3", len(fl.Dumps()), fl.Dropped())
	}
	var prom bytes.Buffer
	if err := s.Registry().WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), `vconf_flight_dumps_total{trigger="invariant"} 2`) {
		t.Fatal("dump counter did not track frozen dumps")
	}
}

func TestFlightCapacityScaleMirror(t *testing.T) {
	s := healthSink(t, nil)
	s.SetCapacityScale(3, 0.5)
	s.SetCapacityScale(1, 0)
	s.SetCapacityScale(7, 0.9)
	s.SetCapacityScale(7, 1) // healed: evicted from the sparse map
	s.TriggerFlight("fault", "scale probe")
	d := s.Flight().Dumps()[0]
	want := []AgentScale{{Agent: 1, Scale: 0}, {Agent: 3, Scale: 0.5}}
	if !reflect.DeepEqual(d.CapacityScales, want) {
		t.Fatalf("capacity scales = %+v, want %+v (sorted, healed agents evicted)", d.CapacityScales, want)
	}
}

func TestFlightDumpIncludesWindowTail(t *testing.T) {
	s := healthSink(t, nil)
	for i := 0; i < 30; i++ {
		s.Record(DecisionRecord{TimeS: float64(i) + 0.5, Kind: "arrive", Admitted: true})
	}
	s.Record(DecisionRecord{TimeS: 30.5, Kind: "region-outage", Incident: 1})
	s.TriggerFlight("fault", "tail probe")
	d := s.Flight().Dumps()[0]
	// Default FlightConfig keeps 16 windows; 30 closed so far.
	if len(d.Windows) != 16 {
		t.Fatalf("dump windows = %d, want 16", len(d.Windows))
	}
	if d.Windows[len(d.Windows)-1].Index != 29 {
		t.Fatalf("dump tail ends at window %d, want 29 (newest closed)", d.Windows[len(d.Windows)-1].Index)
	}
}

func TestAlertFireFreezesFlightDump(t *testing.T) {
	s := healthSink(t, tightAvailability())
	s.Record(DecisionRecord{TimeS: 0.5, Kind: "region-outage", Incident: 4, Orphans: 1, EvacRejects: 1})
	alertStream(s, 5, map[int]bool{1: true, 2: true, 3: true})
	var alertDump *FlightDump
	for i, d := range s.Flight().Dumps() {
		if d.Trigger == "alert" {
			alertDump = &s.Flight().Dumps()[i]
			break
		}
	}
	if alertDump == nil {
		t.Fatalf("no alert-triggered dump; dumps = %+v", s.Flight().Dumps())
	}
	if alertDump.Incident != 4 {
		t.Fatalf("alert dump incident = %d, want 4", alertDump.Incident)
	}
	if len(alertDump.ActiveAlerts) != 1 || alertDump.ActiveAlerts[0] != "availability" {
		t.Fatalf("alert dump active alerts = %v", alertDump.ActiveAlerts)
	}
	if len(alertDump.Windows) == 0 {
		t.Fatal("alert dump carries no window tail")
	}
}

func TestHealthDocsNilSafe(t *testing.T) {
	var sp *Sampler
	var eng *AlertEngine
	var fl *FlightRecorder
	for name, write := range map[string]func(*bytes.Buffer) error{
		"timeseries": func(b *bytes.Buffer) error { return sp.WriteJSON(b) },
		"alerts":     func(b *bytes.Buffer) error { return eng.WriteJSON(b) },
		"flightrec":  func(b *bytes.Buffer) error { return fl.WriteJSON(b) },
	} {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatalf("%s: nil WriteJSON errored: %v", name, err)
		}
		var doc map[string]interface{}
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("%s: nil doc not valid JSON: %v", name, err)
		}
	}
	if sp.Tail(4) != nil || sp.Windows() != nil || sp.TotalWindows() != 0 || sp.Interval() != 0 {
		t.Fatal("nil sampler leaked data")
	}
	if eng.Events() != nil || eng.Summary() != nil || eng.ActiveAlerts() != nil {
		t.Fatal("nil engine leaked data")
	}
	if fl.Dumps() != nil || fl.Dropped() != 0 {
		t.Fatal("nil recorder leaked data")
	}
	sp.Flush()
}

func TestNilSinkHealthMethodsZeroAlloc(t *testing.T) {
	var s *Sink
	s.TriggerFlight("fault", "nil")
	s.SetCapacityScale(1, 0.5)
	s.FlushSampler()
	if s.Sampler() != nil || s.Alerts() != nil || s.Flight() != nil {
		t.Fatal("nil sink leaked health components")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s.SetCapacityScale(1, 0.5)
		s.TriggerFlight("fault", "nil")
		s.FlushSampler()
		_ = s.Sampler()
		_ = s.Alerts()
		_ = s.Flight()
	})
	if allocs != 0 {
		t.Fatalf("nil-sink health path allocates %.1f/op, want 0", allocs)
	}
}

// TestSamplerOffByDefault pins that a sink without Sample configured has no
// sampler or alert engine — existing users see no new overhead or families.
func TestSamplerOffByDefault(t *testing.T) {
	s := New(Config{Workers: 1})
	if s.Sampler() != nil || s.Alerts() != nil {
		t.Fatal("sampler/alerts built without Config.Sample/SLO")
	}
	if s.Flight() == nil {
		t.Fatal("flight recorder must be on for every enabled sink")
	}
	var prom bytes.Buffer
	if err := s.Registry().WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(prom.String(), "vconf_window_") || strings.Contains(prom.String(), "vconf_alert") {
		t.Fatal("window/alert families registered without sampling configured")
	}
}
