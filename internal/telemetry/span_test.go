package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanNilSink pins the disabled-span contract: starting on a nil sink
// returns the zero Span, ending it is a no-op, and every span-family
// method stays nil-safe.
func TestSpanNilSink(t *testing.T) {
	var s *Sink
	root := s.StartRoot("event", "event", 0)
	if root.Active() || root.ID() != 0 {
		t.Fatalf("nil sink produced an active span: %+v", root)
	}
	child := s.StartSpan("heal", root)
	child.End()
	root.EndArg(42)
	s.EmitSpan("task", "task", root, 100, time.Now(), 10, 1)
	if s.Spans() != nil {
		t.Fatal("nil sink leaked a span ring")
	}
	s.DistFreeze(100)
	s.DistAbandon()
	s.DistRetry()
	if s.ClassOf(3) != 0 || s.Classes() != nil {
		t.Fatal("nil sink returned class identities")
	}
	if err := s.WriteChromeTrace(io.Discard); err != nil {
		t.Fatal(err)
	}
}

// TestSpanZeroAlloc pins both span paths at zero allocations per op: the
// nil-sink path must be a pointer test, and the enabled path a value
// handle plus a ring slot — no heap traffic either way.
func TestSpanZeroAlloc(t *testing.T) {
	var nilSink *Sink
	if allocs := testing.AllocsPerRun(1000, func() {
		sp := nilSink.StartRoot("event", "event", 0)
		ch := nilSink.StartSpan("heal", sp)
		ch.End()
		sp.EndArg(1)
		nilSink.DistFreeze(5)
		nilSink.DistRetry()
		_ = nilSink.ClassOf(2)
	}); allocs != 0 {
		t.Fatalf("nil-sink span path allocates %.1f/op, want 0", allocs)
	}

	s := New(Config{Workers: 2, SpanCapacity: 64})
	if allocs := testing.AllocsPerRun(1000, func() {
		sp := s.StartRoot("event", "event", 0)
		ch := s.StartSpan("heal", sp)
		ch.End()
		sp.EndArg(1)
	}); allocs != 0 {
		t.Fatalf("enabled span path allocates %.1f/op, want 0", allocs)
	}
}

// TestSpanRingWrapAndDropped drives the ring past capacity and checks the
// wrap accounting plus the vconf_trace_dropped_total exposure.
func TestSpanRingWrapAndDropped(t *testing.T) {
	r := NewSpanRing(4)
	for i := 0; i < 10; i++ {
		overwrote := r.Append(SpanRecord{ID: uint64(i + 1), Name: "s"})
		if want := i >= 4; overwrote != want {
			t.Fatalf("append %d: overwrote = %v, want %v", i, overwrote, want)
		}
	}
	if r.Len() != 4 || r.Total() != 10 || r.Dropped() != 6 {
		t.Fatalf("len/total/dropped = %d/%d/%d, want 4/10/6", r.Len(), r.Total(), r.Dropped())
	}
	spans := r.Spans()
	for i, sp := range spans {
		if sp.Seq != int64(6+i) {
			t.Fatalf("span %d has seq %d, want %d (oldest-first)", i, sp.Seq, 6+i)
		}
	}

	s := New(Config{Workers: 2, SpanCapacity: 2})
	for i := 0; i < 5; i++ {
		s.StartRoot("event", "event", 0).End()
	}
	var b strings.Builder
	if err := s.Registry().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `vconf_trace_dropped_total{ring="spans"} 3`) {
		t.Fatalf("span drop counter missing:\n%s", b.String())
	}
}

// TestChromeTraceNestedShape is the golden-shape test for the merged
// Chrome export: an event root containing a task span whose
// snapshot/walk/commit attribution children tile it, all on pid 1, with
// time containment holding on every lane so the viewer renders a flame
// graph — plus the id/parent causal links in args.
func TestChromeTraceNestedShape(t *testing.T) {
	s := New(Config{Workers: 2})
	root := s.StartRoot("event:arrive", "event", 0)
	base := time.Now()
	task := s.EmitSpan("task", "task", root, 100, base, 1000, 7)
	s.EmitSpan("snapshot", "task", task, 100, base, 300, 7)
	s.EmitSpan("walk", "task", task, 100, base.Add(300*time.Nanosecond), 500, 7)
	s.EmitSpan("commit", "task", task, 100, base.Add(800*time.Nanosecond), 200, 7)
	// The retro-emitted children extend to base+1000ns of wall time; the
	// root's duration is measured live, so make sure it ends after them
	// rather than racing the emit calls on a fast machine.
	time.Sleep(10 * time.Microsecond)
	root.EndArg(7)

	var b strings.Builder
	if err := s.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Ts   float64                `json:"ts"`
			Dur  float64                `json:"dur"`
			Pid  int                    `json:"pid"`
			Tid  int                    `json:"tid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}

	type ev = struct {
		Name string                 `json:"name"`
		Ph   string                 `json:"ph"`
		Ts   float64                `json:"ts"`
		Dur  float64                `json:"dur"`
		Pid  int                    `json:"pid"`
		Tid  int                    `json:"tid"`
		Args map[string]interface{} `json:"args"`
	}
	byName := map[string]ev{}
	meta := 0
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			meta++
			continue
		}
		if e.Ph != "X" {
			t.Fatalf("unexpected phase %q on %q", e.Ph, e.Name)
		}
		byName[e.Name] = e
	}
	if meta != 2 {
		t.Fatalf("metadata events = %d, want process names for both pids", meta)
	}

	contains := func(outer, inner string) {
		t.Helper()
		o, okO := byName[outer]
		i, okI := byName[inner]
		if !okO || !okI {
			t.Fatalf("missing span %q or %q in export (have %v)", outer, inner, byName)
		}
		const eps = 0.002 // µs slack for the 0.001 min-duration clamp
		if i.Ts < o.Ts-eps || i.Ts+i.Dur > o.Ts+o.Dur+eps {
			t.Fatalf("%q [%v,%v] not contained in %q [%v,%v]",
				inner, i.Ts, i.Ts+i.Dur, outer, o.Ts, o.Ts+o.Dur)
		}
	}
	for _, e := range byName {
		if e.Pid != 1 {
			t.Fatalf("span %q on pid %d, want 1", e.Name, e.Pid)
		}
	}
	if byName["event:arrive"].Tid != 0 || byName["task"].Tid != 100 {
		t.Fatal("spans landed on the wrong lanes")
	}
	contains("event:arrive", "task")
	contains("task", "snapshot")
	contains("task", "walk")
	contains("task", "commit")
	if byName["task"].Args["parent"] != byName["event:arrive"].Args["id"] {
		t.Fatal("task span does not point at the event root")
	}
	if byName["snapshot"].Args["parent"] != byName["task"].Args["id"] {
		t.Fatal("snapshot span does not point at the task span")
	}
}

// TestExpositionRaceStorm hammers every read endpoint while writers storm
// the sink — run under -race this is the data-race proof for the merged
// exporters.
func TestExpositionRaceStorm(t *testing.T) {
	s := New(Config{Workers: 4, TraceCapacity: 128, SpanCapacity: 128})
	srv, err := Serve(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// One serialized recorder goroutine (Record's contract: the event loop /
	// retire path is single-caller) plus concurrent worker-side writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s.Record(DecisionRecord{Kind: "arrive", Session: i, Admitted: true, DelayMS: 1.5})
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.TaskOutcome(w, 0, 0, OutcomeCommit)
				root := s.StartRoot("event:arrive", "event", int32(w))
				s.EmitSpan("task", "task", root, 100+int32(w), time.Now(), 50, int64(i))
				root.EndArg(int64(i))
				s.DistFreeze(100)
			}
		}(w)
	}

	paths := []string{"/metrics", "/metrics.json", "/trace.jsonl", "/spans.jsonl", "/trace.chrome.json"}
	for round := 0; round < 20; round++ {
		p := paths[round%len(paths)]
		resp, err := http.Get("http://" + srv.Addr() + p)
		if err != nil {
			t.Fatalf("GET %s: %v", p, err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatalf("read %s: %v", p, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", p, resp.StatusCode)
		}
	}
	close(stop)
	wg.Wait()
}
