package telemetry

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"sync"
)

// This file is the incident flight recorder: a bounded black box that, on
// trigger, freezes a correlated snapshot of what the control plane looked
// like — the sampler's recent windows, the tail of the decision-record
// and span rings, the fleet's capacity-scale map, per-region health
// counters and the scheduler gauges — so every chaos incident ships its
// own post-mortem artifact at /flightrec.json (and vcsim -flightrec-out).
//
// Triggers: "alert" (an SLO burn-rate rule fired), "fault" (an injected
// capacity-reducing incident healed), "evac-reject" (healing had to drop
// sessions), "invariant" (CheckInvariants failed). Fault-path triggers
// dedupe per incident id so re-triggers never burn the dump budget; the
// bound is MaxDumps with a counted drop overflow.

// FlightConfig sizes the flight recorder.
type FlightConfig struct {
	// MaxDumps bounds retained dumps (<= 0 defaults to 8).
	MaxDumps int
	// Windows / Records / Spans bound each dump's timeline neighborhood
	// (defaults 16 / 64 / 128).
	Windows int
	Records int
	Spans   int
}

func (c FlightConfig) withDefaults() FlightConfig {
	if c.MaxDumps <= 0 {
		c.MaxDumps = 8
	}
	if c.Windows <= 0 {
		c.Windows = 16
	}
	if c.Records <= 0 {
		c.Records = 64
	}
	if c.Spans <= 0 {
		c.Spans = 128
	}
	return c
}

// flightTriggers are the trigger kinds, pre-registered on
// vconf_flight_dumps_total so scrapers see every kind at 0.
var flightTriggers = []string{"alert", "fault", "evac-reject", "invariant"}

// AgentScale is one impaired agent's effective capacity scale (healthy
// agents at scale 1 are omitted from the map).
type AgentScale struct {
	Agent int     `json:"agent"`
	Scale float64 `json:"scale"`
}

// RegionHealth is one region's cumulative counter readings at dump time.
type RegionHealth struct {
	Region          int   `json:"region"`
	Commits         int64 `json:"commits"`
	Rejects         int64 `json:"rejects"`
	Arrivals        int64 `json:"arrivals"`
	Departures      int64 `json:"departures"`
	EvacOK          int64 `json:"evac_ok"`
	EvacRejects     int64 `json:"evac_rejects"`
	DegradedRejects int64 `json:"degraded_rejects"`
}

// SchedGauges mirrors the pipelined scheduler gauges into a dump.
type SchedGauges struct {
	Stalls       float64 `json:"stalls"`
	Waits        float64 `json:"waits"`
	QueuePeak    float64 `json:"queue_peak"`
	InFlightPeak float64 `json:"in_flight_peak"`
}

// FlightDump is one frozen incident snapshot.
type FlightDump struct {
	Seq          int     `json:"seq"`
	Trigger      string  `json:"trigger"`
	Reason       string  `json:"reason"`
	Incident     int     `json:"incident,omitempty"`
	IncidentKind string  `json:"incident_kind,omitempty"`
	TimeS        float64 `json:"time_s"`

	ActiveAlerts   []string       `json:"active_alerts,omitempty"`
	CapacityScales []AgentScale   `json:"capacity_scales,omitempty"`
	Regions        []RegionHealth `json:"regions,omitempty"`
	Sched          SchedGauges    `json:"sched"`

	Windows []Window         `json:"windows,omitempty"`
	Records []DecisionRecord `json:"records,omitempty"`
	Spans   []SpanRecord     `json:"spans,omitempty"`
}

// FlightRecorder retains the frozen dumps plus the live state the dumps
// snapshot from: the fleet capacity-scale mirror and the running incident
// marker (both written from serialized paths, read at dump time without
// touching any orchestrator lock).
type FlightRecorder struct {
	mu      sync.Mutex
	cfg     FlightConfig
	dumps   []FlightDump
	dropped int64
	seen    map[int]bool // incident ids already dumped by fault-path triggers
	scales  map[int]float64

	lastIncident     int
	lastIncidentKind string
	lastTimeS        float64

	dumpCtr map[string]*Counter
	shard   int
}

func newFlightRecorder(cfg FlightConfig) *FlightRecorder {
	return &FlightRecorder{
		cfg:    cfg.withDefaults(),
		seen:   make(map[int]bool),
		scales: make(map[int]float64),
	}
}

// noteRecord advances the incident marker and virtual clock from one
// retired decision record.
func (f *FlightRecorder) noteRecord(rec *DecisionRecord) {
	f.mu.Lock()
	f.lastTimeS = rec.TimeS
	if rec.Incident != 0 {
		f.lastIncident = rec.Incident
		f.lastIncidentKind = rec.Kind
	}
	f.mu.Unlock()
}

// Dumps returns the retained dumps in trigger order.
func (f *FlightRecorder) Dumps() []FlightDump {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]FlightDump(nil), f.dumps...)
}

// Dropped returns how many triggers arrived after MaxDumps filled.
func (f *FlightRecorder) Dropped() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// scalesLocked renders the capacity-scale mirror as a sorted sparse map
// (impaired agents only).
func (f *FlightRecorder) scalesLocked() []AgentScale {
	if len(f.scales) == 0 {
		return nil
	}
	out := make([]AgentScale, 0, len(f.scales))
	for a, s := range f.scales {
		out = append(out, AgentScale{Agent: a, Scale: s})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Agent < out[j].Agent })
	return out
}

// FlightDoc is the /flightrec.json document shape.
type FlightDoc struct {
	Dumps   []FlightDump `json:"dumps"`
	Dropped int64        `json:"dropped,omitempty"`
}

// WriteJSON renders the retained dumps. Works on a nil recorder (empty
// document), so the endpoint can be mounted unconditionally.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	doc := FlightDoc{Dumps: []FlightDump{}}
	if f != nil {
		f.mu.Lock()
		doc.Dumps = append(doc.Dumps, f.dumps...)
		doc.Dropped = f.dropped
		f.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteFile writes the dump document to path (the -flightrec-out format).
func (f *FlightRecorder) WriteFile(path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := f.WriteJSON(out)
	if cerr := out.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// SetCapacityScale updates the flight recorder's fleet capacity mirror.
// The orchestrator calls this wherever it pushes effective scales into
// the ledger, so dump-time reads never need the orchestrator lock.
// Healthy (scale 1) agents are evicted from the sparse map.
func (s *Sink) SetCapacityScale(agent int, scale float64) {
	if s == nil || s.flight == nil {
		return
	}
	f := s.flight
	f.mu.Lock()
	if scale == 1 {
		delete(f.scales, agent)
	} else {
		f.scales[agent] = scale
	}
	f.mu.Unlock()
}

// Flight exposes the flight recorder (nil when disabled).
func (s *Sink) Flight() *FlightRecorder {
	if s == nil {
		return nil
	}
	return s.flight
}

// TriggerFlight freezes one flight-recorder dump with the sampler's
// recent windows as the timeline neighborhood. No-op when disabled.
// Callers hold no telemetry lock (the orchestrator's fault and invariant
// paths come through here).
func (s *Sink) TriggerFlight(trigger, reason string) {
	if s == nil || s.flight == nil {
		return
	}
	var tail []Window
	if s.sampler != nil {
		tail = s.sampler.Tail(s.flight.cfg.Windows)
	}
	s.triggerFlight(trigger, reason, tail, s.alerts.ActiveAlerts())
}

// triggerFlight is the common dump path. tail and active are pre-fetched
// by the caller: the alert-fire path arrives here while still holding the
// sampler and engine locks, so this function must never call back into
// either.
func (s *Sink) triggerFlight(trigger, reason string, tail []Window, active []string) {
	f := s.flight
	f.mu.Lock()
	// Fault-path triggers dedupe per incident: the first dump for an
	// incident wins, later re-triggers (evac-reject after fault, repeated
	// degrades of one renewal) don't burn the budget.
	if (trigger == "fault" || trigger == "evac-reject") && f.lastIncident != 0 {
		if f.seen[f.lastIncident] {
			f.mu.Unlock()
			return
		}
		f.seen[f.lastIncident] = true
	}
	if len(f.dumps) >= f.cfg.MaxDumps {
		f.dropped++
		f.mu.Unlock()
		return
	}
	d := FlightDump{
		Trigger:        trigger,
		Reason:         reason,
		Incident:       f.lastIncident,
		IncidentKind:   f.lastIncidentKind,
		TimeS:          f.lastTimeS,
		ActiveAlerts:   active,
		CapacityScales: f.scalesLocked(),
		Windows:        tail,
	}
	f.mu.Unlock()

	// Assemble the ring tails and counter readings outside the recorder
	// lock (ring reads take their own mutexes; counter reads are
	// lock-free).
	recs := s.rec.Records()
	if n := len(recs); n > f.cfg.Records {
		recs = recs[n-f.cfg.Records:]
	}
	d.Records = recs
	spans := s.spans.Spans()
	if n := len(spans); n > f.cfg.Spans {
		spans = spans[n-f.cfg.Spans:]
	}
	d.Spans = spans
	d.Sched = SchedGauges{
		Stalls:       s.schedStalls.Value(),
		Waits:        s.schedWaits.Value(),
		QueuePeak:    s.schedQueue.Value(),
		InFlightPeak: s.schedFlight.Value(),
	}
	for r := 0; r < s.regions; r++ {
		rh := RegionHealth{
			Region:          r,
			Arrivals:        s.arrivals[r].Value(),
			Departures:      s.departs[r].Value(),
			EvacOK:          s.evacOK[r].Value(),
			EvacRejects:     s.evacRej[r].Value(),
			DegradedRejects: s.degRejects[r].Value(),
		}
		for c := 0; c < s.numClasses; c++ {
			rh.Commits += s.commits[c*s.regions+r].Value()
			rh.Rejects += s.rejects[c*s.regions+r].Value()
		}
		d.Regions = append(d.Regions, rh)
	}

	f.mu.Lock()
	if len(f.dumps) < f.cfg.MaxDumps {
		d.Seq = len(f.dumps)
		f.dumps = append(f.dumps, d)
		if f.dumpCtr != nil {
			if c := f.dumpCtr[trigger]; c != nil {
				c.Inc(f.shard)
			}
		}
	} else {
		f.dropped++
	}
	f.mu.Unlock()
}
