package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"sync"
)

// This file is the windowed time-series sampler: the "what is happening
// right now" layer over the cumulative registry. The run is cut into
// fixed-width virtual-time windows; every window holds per-window *deltas*
// (events, task outcomes, drops, healing outcomes, per-class delay
// histogram bucket counts), never cumulative values, so windowed rates and
// per-class windowed percentiles fall out locally.
//
// Determinism contract: windows are indexed by virtual event time
// (floor(TimeS/interval)) and filled exclusively from the serialized
// decision-record stream — which retires in event order on all three
// orchestrator paths — never from racing reads of live counter shards.
// Two runs with the same seed therefore produce byte-identical
// /timeseries.json windows (wall-clock fields are deliberately absent).
// The sampler runs inside Sink.Record on the retire/barrier path, so
// workers never pay for it and a nil sink still costs nothing.

// SamplerConfig sizes the windowed sampler.
type SamplerConfig struct {
	// IntervalS is the window width in virtual seconds. <= 0 defaults to 1.
	IntervalS float64
	// Capacity bounds the closed-window ring. <= 0 defaults to 512.
	Capacity int
}

// ClassWindow is one SLO class's slice of a window: how many delay
// observations landed and where their quarter-octave percentiles sat.
type ClassWindow struct {
	Class  string `json:"class"`
	DelayN int64  `json:"delay_n"`
	P50US  int64  `json:"delay_p50_us"`
	P99US  int64  `json:"delay_p99_us"`

	// buckets holds the window's delay observations on the shared
	// quarter-octave scale (µs) — per-window deltas, so cross-window merges
	// and threshold-exceedance counts stay exact. Kept unexported: the
	// JSON surface carries the derived readings only.
	buckets []int64
}

// AboveUS counts the window's delay observations lying in buckets strictly
// above the bucket holding targetUS (quarter-octave resolution, ≈ ±12%).
// This is the "bad events" reading for delay SLO rules.
func (cw *ClassWindow) AboveUS(targetUS int64) int64 {
	if cw.buckets == nil {
		return 0
	}
	var bad int64
	for i := bucketIndex(targetUS) + 1; i < histBuckets; i++ {
		bad += cw.buckets[i]
	}
	return bad
}

// Window is one closed sampling window: per-window event and outcome
// deltas plus the rates derived from them. Gauges (objective, active
// sessions) carry the last value observed inside the window.
type Window struct {
	Index  int64   `json:"index"`
	StartS float64 `json:"start_s"`
	EndS   float64 `json:"end_s"`

	Events    int64 `json:"events"`
	Commits   int64 `json:"commits"`
	Rejects   int64 `json:"rejects"`
	NoChange  int64 `json:"nochange"`
	Conflicts int64 `json:"conflicts"`

	Arrivals   int64 `json:"arrivals"`
	Departures int64 `json:"departures"`
	Drops      int64 `json:"drops"`
	Skips      int64 `json:"skips"`
	Stalls     int64 `json:"stalls"`

	Faults      int64 `json:"faults"`
	Orphans     int64 `json:"orphans"`
	Evacuated   int64 `json:"evacuated"`
	EvacRejects int64 `json:"evac_rejects"`

	// Incident carries the most recent fault incident id observed up to
	// the end of this window (inherited across windows; 0 before the first
	// fault), so alert fire/resolve events correlate with injected faults
	// without any wall-clock join.
	Incident     int    `json:"incident,omitempty"`
	IncidentKind string `json:"incident_kind,omitempty"`

	// Derived rates. RejectRatio is task-level (rejects over task
	// outcomes); DropRatio is admission-level (dropped arrivals plus
	// evacuation rejects over arrivals plus orphans) — the availability
	// SLO's bad fraction.
	CommitsPerS   float64 `json:"commits_per_s"`
	RejectRatio   float64 `json:"reject_ratio"`
	ConflictRatio float64 `json:"conflict_ratio"`
	DropRatio     float64 `json:"drop_ratio"`

	Objective float64 `json:"objective"`
	Active    float64 `json:"active_sessions"`

	Classes []ClassWindow `json:"classes,omitempty"`
}

// Sampler cuts the decision stream into fixed-width virtual-time windows
// and retains the last Capacity closed windows in a ring. All mutation
// happens via observe on the serialized retire path; readers (exposition,
// flight dumps) take the same mutex.
type Sampler struct {
	mu       sync.Mutex
	interval float64
	capacity int
	classes  []string

	// onClose receives every freshly closed window plus the ring tail
	// (closed window last) — the sink routes it to the window gauges and
	// the alert engine.
	onClose func(w *Window, tail []Window)
	// tailNeed is how many trailing windows onClose consumers want (max of
	// alert slow windows and flight-recorder window depth).
	tailNeed int

	cur          *Window
	curBuckets   [][]int64 // class → per-window delay bucket deltas
	curDelayN    []int64
	lastIncident int
	lastKind     string

	windows []Window // ring, oldest-first once wrapped via start index
	start   int      // ring start when len(windows) == capacity
	total   int64    // windows ever closed
}

// newSampler builds a sampler for the given class names ("default" when
// the sink has no class map).
func newSampler(cfg SamplerConfig, classes []string) *Sampler {
	if cfg.IntervalS <= 0 {
		cfg.IntervalS = 1
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 512
	}
	if len(classes) == 0 {
		classes = []string{"default"}
	}
	sp := &Sampler{
		interval: cfg.IntervalS,
		capacity: cfg.Capacity,
		classes:  classes,
		tailNeed: 1,
	}
	sp.curBuckets = make([][]int64, len(classes))
	for c := range sp.curBuckets {
		sp.curBuckets[c] = make([]int64, histBuckets)
	}
	sp.curDelayN = make([]int64, len(classes))
	return sp
}

// Interval returns the window width in virtual seconds (0 when nil).
func (sp *Sampler) Interval() float64 {
	if sp == nil {
		return 0
	}
	return sp.interval
}

// observe folds one retired decision record into the current window,
// closing windows first if rec.TimeS crossed one or more boundaries.
// Called from Sink.Record only (serialized retire path).
func (sp *Sampler) observe(rec *DecisionRecord, class int) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	idx := int64(math.Floor(rec.TimeS / sp.interval))
	if idx < 0 {
		idx = 0
	}
	if sp.cur == nil {
		sp.openLocked(idx)
	}
	for sp.cur.Index < idx {
		sp.closeLocked()
	}
	w := sp.cur
	w.Events++
	w.Commits += int64(rec.Commits)
	w.Rejects += int64(rec.Rejects)
	w.NoChange += int64(rec.NoChange)
	w.Conflicts += int64(rec.Conflicts)
	switch rec.Kind {
	case "arrive":
		w.Arrivals++
		if !rec.Admitted {
			w.Drops++
		}
	case "depart":
		w.Departures++
		if !rec.Admitted {
			w.Skips++
		}
	default:
		w.Faults++
	}
	if rec.Stalled {
		w.Stalls++
	}
	w.Orphans += int64(rec.Orphans)
	w.Evacuated += int64(rec.Evacuated)
	w.EvacRejects += int64(rec.EvacRejects)
	if rec.Incident != 0 {
		sp.lastIncident = rec.Incident
		sp.lastKind = rec.Kind
		w.Incident = rec.Incident
		w.IncidentKind = rec.Kind
	}
	w.Objective = rec.Objective
	w.Active = float64(rec.ActiveSessions)
	if rec.DelayMS > 0 {
		if class < 0 || class >= len(sp.curBuckets) {
			class = 0
		}
		sp.curBuckets[class][bucketIndex(int64(rec.DelayMS*1e3))]++
		sp.curDelayN[class]++
	}
}

// Flush closes the currently open window (if any). Drivers call it once
// at the end of the run so the final partial window reaches the ring and
// the alert engine before exposition.
func (sp *Sampler) Flush() {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.cur != nil {
		sp.closeLocked()
		sp.cur = nil
	}
}

// openLocked starts window idx, inheriting the running incident marker.
func (sp *Sampler) openLocked(idx int64) {
	sp.cur = &Window{
		Index:        idx,
		StartS:       float64(idx) * sp.interval,
		EndS:         float64(idx+1) * sp.interval,
		Incident:     sp.lastIncident,
		IncidentKind: sp.lastKind,
	}
	for c := range sp.curBuckets {
		for i := range sp.curBuckets[c] {
			sp.curBuckets[c][i] = 0
		}
		sp.curDelayN[c] = 0
	}
}

// closeLocked finalizes the current window — derives rates and per-class
// percentiles, appends to the ring, notifies onClose — and opens the next.
func (sp *Sampler) closeLocked() {
	w := sp.cur
	if taskN := w.Commits + w.Rejects + w.NoChange; taskN > 0 {
		w.RejectRatio = float64(w.Rejects) / float64(taskN)
	}
	if cN := w.Commits + w.Conflicts; cN > 0 {
		w.ConflictRatio = float64(w.Conflicts) / float64(cN)
	}
	if admN := w.Arrivals + w.Orphans; admN > 0 {
		w.DropRatio = float64(w.Drops+w.EvacRejects) / float64(admN)
	}
	w.CommitsPerS = float64(w.Commits) / sp.interval
	for c, name := range sp.classes {
		if sp.curDelayN[c] == 0 {
			continue
		}
		var counts [histBuckets]int64
		copy(counts[:], sp.curBuckets[c])
		out := []int64{0, 0}
		quantilesFromCounts(&counts, sp.curDelayN[c], []float64{0.50, 0.99}, out)
		w.Classes = append(w.Classes, ClassWindow{
			Class:   name,
			DelayN:  sp.curDelayN[c],
			P50US:   out[0],
			P99US:   out[1],
			buckets: append([]int64(nil), sp.curBuckets[c]...),
		})
	}
	closed := *w
	sp.appendLocked(closed)
	sp.total++
	if sp.onClose != nil {
		sp.onClose(&closed, sp.tailLocked(sp.tailNeed))
	}
	sp.openLocked(w.Index + 1)
}

// appendLocked pushes one closed window into the bounded ring.
func (sp *Sampler) appendLocked(w Window) {
	if len(sp.windows) < sp.capacity {
		sp.windows = append(sp.windows, w)
		return
	}
	sp.windows[sp.start] = w
	sp.start = (sp.start + 1) % sp.capacity
}

// tailLocked copies the newest n closed windows, oldest-first.
func (sp *Sampler) tailLocked(n int) []Window {
	held := len(sp.windows)
	if n > held {
		n = held
	}
	out := make([]Window, 0, n)
	for i := held - n; i < held; i++ {
		out = append(out, sp.windows[(sp.start+i)%held])
	}
	return out
}

// Tail returns the newest n closed windows, oldest-first.
func (sp *Sampler) Tail(n int) []Window {
	if sp == nil || n <= 0 {
		return nil
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.tailLocked(n)
}

// Windows returns every held closed window, oldest-first.
func (sp *Sampler) Windows() []Window {
	if sp == nil {
		return nil
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.tailLocked(len(sp.windows))
}

// TotalWindows returns the number of windows ever closed (held or
// overwritten).
func (sp *Sampler) TotalWindows() int64 {
	if sp == nil {
		return 0
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.total
}

// TimeseriesDoc is the /timeseries.json document shape (also what
// vcreport ingests offline).
type TimeseriesDoc struct {
	IntervalS    float64  `json:"interval_s"`
	WindowsTotal int64    `json:"windows_total"`
	Windows      []Window `json:"windows"`
}

// WriteJSON renders the held windows as the /timeseries.json document.
// Works on a nil sampler (empty document), so the endpoint can be mounted
// unconditionally.
func (sp *Sampler) WriteJSON(w io.Writer) error {
	doc := TimeseriesDoc{Windows: []Window{}}
	if sp != nil {
		doc.IntervalS = sp.Interval()
		doc.WindowsTotal = sp.TotalWindows()
		doc.Windows = sp.Windows()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
