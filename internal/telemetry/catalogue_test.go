package telemetry

import (
	"bytes"
	"os"
	"regexp"
	"strings"
	"testing"
)

// TestMetricCatalogueMatchesREADME is the drift guard between the README's
// metric catalogue and the families a fully-configured sink actually
// registers. Both directions: every exported family must be documented
// (exactly, or covered by a `vconf_foo_*` wildcard), and every documented
// name must exist.
func TestMetricCatalogueMatchesREADME(t *testing.T) {
	raw, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	tokens := regexp.MustCompile(`vconf_[a-z0-9_*]+`).FindAllString(string(raw), -1)
	exact := map[string]bool{}
	var prefixes []string
	for _, tok := range tokens {
		if strings.HasSuffix(tok, "*") {
			prefixes = append(prefixes, strings.TrimSuffix(tok, "*"))
		} else {
			exact[tok] = true
		}
	}

	// A sink with every subsystem on registers the full catalogue up front.
	s := New(Config{
		Workers: 2,
		Regions: 2,
		Classes: []string{"interactive", "broadcast"},
		Sample:  &SamplerConfig{IntervalS: 1},
		SLO: []SLORule{{
			Name: "availability", Kind: RuleAvailability, Budget: 0.01,
		}},
	})
	var buf bytes.Buffer
	if err := s.Registry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	registered := map[string]bool{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			registered[strings.Fields(rest)[0]] = true
		}
	}
	if len(registered) == 0 {
		t.Fatal("no # TYPE lines in the Prometheus exposition")
	}

	covered := func(name string) bool {
		if exact[name] {
			return true
		}
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}
	for name := range registered {
		if !covered(name) {
			t.Errorf("registered family %s is missing from README.md's catalogue", name)
		}
	}
	for name := range exact {
		if !registered[name] {
			t.Errorf("README.md documents %s, but no configured sink registers it", name)
		}
	}
	for _, p := range prefixes {
		hit := false
		for name := range registered {
			if strings.HasPrefix(name, p) {
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("README.md wildcard %s* matches no registered family", p)
		}
	}
}
