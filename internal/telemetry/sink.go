package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"vconf/internal/trace"
)

// TaskOutcome classifies one re-optimization task's terminal outcome for
// the per-region outcome counters.
type TaskOutcome int

const (
	OutcomeCommit TaskOutcome = iota
	OutcomeReject
	OutcomeNoChange
)

// Config sizes a Sink.
type Config struct {
	// Workers hints the counter shard width: one cache-line-padded cell
	// per solver worker plus one for the event loop. 0 defaults to 9
	// (8 workers + event loop); indices wrap, so an under-estimate is
	// safe — it costs sharing, never correctness.
	Workers int
	// TraceCapacity bounds the decision-record ring. 0 defaults to 4096.
	TraceCapacity int
	// SessionRegion maps session ID → region for per-region metric labels
	// (e.g. a geo-federated fleet's home regions). Nil labels everything
	// region 0.
	SessionRegion []int
	// Regions fixes the region count; 0 derives it from SessionRegion
	// (max+1, minimum 1).
	Regions int
	// SpanCapacity bounds the span ring. 0 defaults to 16384 (spans are
	// finer-grained than decision records: one event fans out into task,
	// phase and heal spans).
	SpanCapacity int
	// Classes names the SLO classes (e.g. workload.SLOClassNames); when
	// set, the commit/reject/no-change/conflict/latency families gain a
	// class label and SessionClass maps session ID → class index. Empty
	// keeps the PR 6 region-only label shape.
	Classes      []string
	SessionClass []int
	// Sample enables the windowed time-series sampler (nil = off; forced
	// on with defaults when SLO rules are configured).
	Sample *SamplerConfig
	// SLO declares the burn-rate alert rules evaluated over the sampler's
	// windows. Invalid rules panic at New — a programmer error, like a
	// duplicate metric registration (validate with SLORule.Validate when
	// the rules come from user input).
	SLO []SLORule
	// Flight resizes the always-on incident flight recorder (nil keeps
	// the defaults).
	Flight *FlightConfig
}

// Sink is the instrumentation facade the orchestrator and schedulers call
// into. All methods are nil-receiver safe: a nil *Sink is the disabled
// state, reducing every call site to a pointer test with zero allocation
// (the alloc-pin tests enforce this), so hot paths carry no overhead when
// telemetry is off.
type Sink struct {
	reg   *Registry
	rec   *Recorder
	spans *SpanRing

	// spanSeq allocates causal span identities (atomic; 0 is reserved for
	// "no parent").
	spanSeq uint64

	sessionRegion []int
	regions       int
	sessionClass  []int
	classes       []string // empty when class labels are off
	numClasses    int      // max(1, len(classes))

	// Per-(class,region) handle slices indexed class*regions+region,
	// resolved once at construction so the hot path is an index, not a
	// registry lookup. Without configured classes the class dimension
	// collapses to 1 and labels stay region-only. arrivals/departs stay
	// per-region: the churn kind label already identifies them.
	commits   []*Counter
	rejects   []*Counter
	noChange  []*Counter
	conflicts []*Counter
	arrivals  []*Counter
	departs   []*Counter
	reoptLat  []*Histogram

	// Per-class SLO observability: post-decision session delay histograms,
	// running per-class delay sums backing the Jain fairness gauge.
	classDelay    []*Histogram
	classDelaySum []float64
	classDelayN   []int64
	fairness      *Gauge

	// Dist protocol families (pre-registered so scrapers see them at zero
	// even before any cross-region coordination runs).
	distFreeze   *Histogram
	distAbandons *Counter
	distRetries  *Counter

	// Ring-overwrite visibility for scrapers.
	recDropped  *Counter
	spanDropped *Counter

	// Fault-injection and self-healing instrumentation: injected fault
	// events by kind, orphaned sessions, per-region evacuation outcomes,
	// evacuation-latency and time-to-recovery histograms, and
	// rejects-during-degradation.
	faults      map[string]*Counter
	orphans     *Counter
	evacOK      []*Counter
	evacRej     []*Counter
	evacLat     *Histogram
	recoveryLat *Histogram
	degRejects  []*Counter

	// Global counters.
	stalls        *Counter
	drops         *Counter
	skips         *Counter
	invalidations *Counter
	cacheHits     *Counter
	cachePatches  *Counter
	cacheRebuilds *Counter
	phaseSnapshot *Counter
	phaseWalk     *Counter
	phaseCommit   *Counter

	// Gauges (event-loop writers only).
	objective    *Gauge
	active       *Gauge
	schedStalls  *Gauge
	schedWaits   *Gauge
	schedQueue   *Gauge
	schedFlight  *Gauge
	ledgerCommit *Gauge
	ledgerConfl  *Gauge
	ledgerInfeas *Gauge

	// Continuous health monitoring: the windowed sampler, the burn-rate
	// alert engine over its series, the incident flight recorder, and the
	// latest-window gauges the sampler mirrors into the registry.
	sampler          *Sampler
	alerts           *AlertEngine
	flight           *FlightRecorder
	winCommitsPerS   *Gauge
	winRejectRatio   *Gauge
	winConflictRatio *Gauge
	winDropRatio     *Gauge
	winDelayP99      []*Gauge

	// prevObjective backs ObjectiveDelta (guarded by the recorder mutex's
	// caller — Record is invoked from the serialized event-retire path).
	prevObjective    float64
	haveObjective    bool
	eventShard       int
	feedObjective    *trace.Series
	feedActive       *trace.Series
	feedCommits      *trace.Series
	feedConflicts    *trace.Series
	feedCacheWarmPct *trace.Series
}

// New builds an enabled sink. A nil *Sink (not New's result) is the
// disabled state.
func New(cfg Config) *Sink {
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.TraceCapacity <= 0 {
		cfg.TraceCapacity = 4096
	}
	if cfg.SpanCapacity <= 0 {
		cfg.SpanCapacity = 16384
	}
	regions := cfg.Regions
	if regions <= 0 {
		regions = 1
		for _, r := range cfg.SessionRegion {
			if r+1 > regions {
				regions = r + 1
			}
		}
	}
	numClasses := len(cfg.Classes)
	if numClasses == 0 {
		numClasses = 1
	}
	s := &Sink{
		reg:           NewRegistry(cfg.Workers + 1),
		rec:           NewRecorder(cfg.TraceCapacity),
		spans:         NewSpanRing(cfg.SpanCapacity),
		sessionRegion: cfg.SessionRegion,
		regions:       regions,
		sessionClass:  cfg.SessionClass,
		classes:       cfg.Classes,
		numClasses:    numClasses,
		eventShard:    cfg.Workers,
	}
	s.commits = make([]*Counter, numClasses*regions)
	s.rejects = make([]*Counter, numClasses*regions)
	s.noChange = make([]*Counter, numClasses*regions)
	s.conflicts = make([]*Counter, numClasses*regions)
	s.reoptLat = make([]*Histogram, numClasses*regions)
	s.arrivals = make([]*Counter, regions)
	s.departs = make([]*Counter, regions)
	s.evacOK = make([]*Counter, regions)
	s.evacRej = make([]*Counter, regions)
	s.degRejects = make([]*Counter, regions)
	for c := 0; c < numClasses; c++ {
		for r := 0; r < regions; r++ {
			lbls := []Label{{Key: "region", Value: strconv.Itoa(r)}}
			if len(s.classes) > 0 {
				lbls = []Label{{Key: "class", Value: s.classes[c]}, {Key: "region", Value: strconv.Itoa(r)}}
			}
			i := c*regions + r
			s.commits[i] = s.reg.Counter("vconf_commits_total", "re-optimization proposals committed", lbls...)
			s.rejects[i] = s.reg.Counter("vconf_rejects_total", "re-optimization proposals rejected at commit validation", lbls...)
			s.noChange[i] = s.reg.Counter("vconf_nochange_total", "re-optimization walks that found no improvement", lbls...)
			s.conflicts[i] = s.reg.Counter("vconf_conflicts_total", "commit attempts that lost a cross-shard race", lbls...)
			s.reoptLat[i] = s.reg.Histogram("vconf_reopt_latency_ns", "per-event re-optimization barrier latency (ns)", lbls...)
		}
	}
	for r := 0; r < regions; r++ {
		lbl := Label{Key: "region", Value: strconv.Itoa(r)}
		s.arrivals[r] = s.reg.Counter("vconf_events_total", "churn events handled", Label{Key: "kind", Value: "arrive"}, lbl)
		s.departs[r] = s.reg.Counter("vconf_events_total", "churn events handled", Label{Key: "kind", Value: "depart"}, lbl)
		s.evacOK[r] = s.reg.Counter("vconf_evacuations_total", "orphaned sessions re-homed (ok) or dropped (reject) during healing",
			Label{Key: "result", Value: "ok"}, lbl)
		s.evacRej[r] = s.reg.Counter("vconf_evacuations_total", "orphaned sessions re-homed (ok) or dropped (reject) during healing",
			Label{Key: "result", Value: "reject"}, lbl)
		s.degRejects[r] = s.reg.Counter("vconf_degraded_rejects_total", "arrivals rejected while agents were failed or degraded", lbl)
	}
	s.classDelay = make([]*Histogram, numClasses)
	s.classDelaySum = make([]float64, numClasses)
	s.classDelayN = make([]int64, numClasses)
	for c := 0; c < numClasses; c++ {
		s.classDelay[c] = s.reg.Histogram("vconf_session_delay_us", "post-decision session mean-of-max delay (µs), by SLO class",
			Label{Key: "class", Value: s.className(c)})
	}
	s.fairness = s.reg.Gauge("vconf_class_delay_fairness", "Jain fairness index over per-class mean session delay (1 = perfectly fair)")
	s.distFreeze = s.reg.Histogram("vconf_dist_freeze_ns", "dist coordinator: per-session freeze hold (grant to release, ns)")
	s.distAbandons = s.reg.Counter("vconf_dist_abandons_total", "dist coordinator: frozen sessions abandoned by peer death or timeout")
	s.distRetries = s.reg.Counter("vconf_dist_retries_total", "dist runner: re-dialed coordination attempts after a failed exchange")
	s.recDropped = s.reg.Counter("vconf_trace_dropped_total", "ring records overwritten before scrape, by ring", Label{Key: "ring", Value: "decisions"})
	s.spanDropped = s.reg.Counter("vconf_trace_dropped_total", "ring records overwritten before scrape, by ring", Label{Key: "ring", Value: "spans"})
	s.faults = make(map[string]*Counter, len(faultKinds))
	for _, k := range faultKinds {
		s.faults[k] = s.reg.Counter("vconf_faults_injected_total", "fault events injected, by kind", Label{Key: "kind", Value: k})
	}
	s.orphans = s.reg.Counter("vconf_orphans_total", "sessions orphaned by failures and degradations")
	s.evacLat = s.reg.Histogram("vconf_evacuation_latency_ns", "per-orphan evacuation (re-home) latency (ns)")
	s.recoveryLat = s.reg.Histogram("vconf_time_to_recovery_ns", "per-incident time to recovery (ns)")
	s.stalls = s.reg.Counter("vconf_admission_stalls_total", "events whose admission waited in the pipelined scheduler")
	s.drops = s.reg.Counter("vconf_dropped_arrivals_total", "arrivals rejected at admission")
	s.skips = s.reg.Counter("vconf_skipped_departures_total", "departures for never-admitted sessions")
	s.invalidations = s.reg.Counter("vconf_delay_cache_invalidations_total", "delay-cache entries torn down by departures")
	s.cacheHits = s.reg.Counter("vconf_delay_cache_evals_total", "delay-cache evaluation outcomes", Label{Key: "result", Value: "hit"})
	s.cachePatches = s.reg.Counter("vconf_delay_cache_evals_total", "delay-cache evaluation outcomes", Label{Key: "result", Value: "patch"})
	s.cacheRebuilds = s.reg.Counter("vconf_delay_cache_evals_total", "delay-cache evaluation outcomes", Label{Key: "result", Value: "rebuild"})
	s.phaseSnapshot = s.reg.Counter("vconf_task_phase_ns_total", "cumulative task time per phase (ns)", Label{Key: "phase", Value: "snapshot"})
	s.phaseWalk = s.reg.Counter("vconf_task_phase_ns_total", "cumulative task time per phase (ns)", Label{Key: "phase", Value: "walk"})
	s.phaseCommit = s.reg.Counter("vconf_task_phase_ns_total", "cumulative task time per phase (ns)", Label{Key: "phase", Value: "commit"})
	s.objective = s.reg.Gauge("vconf_objective", "Σ Φ_s over active sessions")
	s.active = s.reg.Gauge("vconf_active_sessions", "live session count")
	s.schedStalls = s.reg.Gauge("vconf_sched_admission_stalls", "pipelined scheduler: admission stalls")
	s.schedWaits = s.reg.Gauge("vconf_sched_reopt_waits", "pipelined scheduler: re-optimization waits")
	s.schedQueue = s.reg.Gauge("vconf_sched_queue_depth_peak", "pipelined scheduler: pending-queue high-water mark")
	s.schedFlight = s.reg.Gauge("vconf_sched_in_flight_peak", "pipelined scheduler: in-flight high-water mark")
	s.ledgerCommit = s.reg.Gauge("vconf_shard_ledger_commits", "shard ledger: CommitDelta outcomes committed")
	s.ledgerConfl = s.reg.Gauge("vconf_shard_ledger_conflicts", "shard ledger: CommitDelta outcomes conflicted")
	s.ledgerInfeas = s.reg.Gauge("vconf_shard_ledger_infeasible", "shard ledger: CommitDelta outcomes infeasible")
	s.feedObjective = trace.NewSeries("telemetry/objective")
	s.feedActive = trace.NewSeries("telemetry/active_sessions")
	s.feedCommits = trace.NewSeries("telemetry/commits_total")
	s.feedConflicts = trace.NewSeries("telemetry/conflicts_total")
	s.feedCacheWarmPct = trace.NewSeries("telemetry/cache_warm_pct")

	// The flight recorder is always on for an enabled sink: it costs
	// nothing until triggered, and -chaos runs without SLO rules still
	// want fault dumps.
	var fcfg FlightConfig
	if cfg.Flight != nil {
		fcfg = *cfg.Flight
	}
	s.flight = newFlightRecorder(fcfg)
	s.flight.shard = s.eventShard
	s.flight.dumpCtr = make(map[string]*Counter, len(flightTriggers))
	for _, t := range flightTriggers {
		s.flight.dumpCtr[t] = s.reg.Counter("vconf_flight_dumps_total", "flight-recorder dumps frozen, by trigger",
			Label{Key: "trigger", Value: t})
	}

	if cfg.Sample == nil && len(cfg.SLO) > 0 {
		cfg.Sample = &SamplerConfig{}
	}
	if cfg.Sample != nil {
		classNames := s.classes
		if len(classNames) == 0 {
			classNames = []string{"default"}
		}
		s.sampler = newSampler(*cfg.Sample, classNames)
		s.winCommitsPerS = s.reg.Gauge("vconf_window_commits_per_s", "last closed sampler window: commit rate")
		s.winRejectRatio = s.reg.Gauge("vconf_window_reject_ratio", "last closed sampler window: task rejects over task outcomes")
		s.winConflictRatio = s.reg.Gauge("vconf_window_conflict_ratio", "last closed sampler window: lost commit races over commit attempts")
		s.winDropRatio = s.reg.Gauge("vconf_window_drop_ratio", "last closed sampler window: dropped arrivals + evac rejects over arrivals + orphans")
		s.winDelayP99 = make([]*Gauge, len(classNames))
		for c, name := range classNames {
			s.winDelayP99[c] = s.reg.Gauge("vconf_window_delay_p99_us", "last closed sampler window: session-delay p99 (µs), by SLO class",
				Label{Key: "class", Value: name})
		}
		if len(cfg.SLO) > 0 {
			eng, err := newAlertEngine(cfg.SLO, s.sampler.Interval())
			if err != nil {
				panic(err)
			}
			eng.shard = s.eventShard
			eng.firingGauge = s.reg.Gauge("vconf_alerts_firing", "SLO burn-rate rules currently firing")
			eng.transitions = make([][2]*Counter, len(eng.rules))
			for i, r := range eng.rules {
				eng.transitions[i][0] = s.reg.Counter("vconf_alert_transitions_total", "SLO alert transitions, by rule and state",
					Label{Key: "rule", Value: r.Name}, Label{Key: "state", Value: "fire"})
				eng.transitions[i][1] = s.reg.Counter("vconf_alert_transitions_total", "SLO alert transitions, by rule and state",
					Label{Key: "rule", Value: r.Name}, Label{Key: "state", Value: "resolve"})
			}
			eng.onFire = func(rule SLORule, ev AlertEvent, tail []Window, active []string) {
				if fw := s.flight.cfg.Windows; len(tail) > fw {
					tail = tail[len(tail)-fw:]
				}
				reason := fmt.Sprintf("%s: fast burn %.2f, slow burn %.2f at window %d", rule.Name, ev.FastBurn, ev.SlowBurn, ev.Window)
				s.triggerFlight("alert", reason, tail, active)
			}
			s.alerts = eng
			if n := eng.maxWindows(); n > s.sampler.tailNeed {
				s.sampler.tailNeed = n
			}
		}
		if fw := s.flight.cfg.Windows; fw > s.sampler.tailNeed {
			s.sampler.tailNeed = fw
		}
		s.sampler.onClose = func(w *Window, tail []Window) {
			s.winCommitsPerS.Set(w.CommitsPerS)
			s.winRejectRatio.Set(w.RejectRatio)
			s.winConflictRatio.Set(w.ConflictRatio)
			s.winDropRatio.Set(w.DropRatio)
			for _, cw := range w.Classes {
				for c, name := range classNames {
					if name == cw.Class {
						s.winDelayP99[c].Set(float64(cw.P99US))
					}
				}
			}
			if s.alerts != nil {
				s.alerts.observe(w, tail)
			}
		}
	}
	return s
}

// Enabled reports whether the sink is live.
func (s *Sink) Enabled() bool { return s != nil }

// Registry exposes the metric registry (nil when disabled).
func (s *Sink) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Recorder exposes the decision-trace ring (nil when disabled).
func (s *Sink) Recorder() *Recorder {
	if s == nil {
		return nil
	}
	return s.rec
}

// EventShard is the counter shard reserved for the event loop / retire
// path (workers use their own indices).
func (s *Sink) EventShard() int {
	if s == nil {
		return 0
	}
	return s.eventShard
}

// RegionOf maps a session to its metric region (0 without a map).
func (s *Sink) RegionOf(session int) int {
	if s == nil || session < 0 || session >= len(s.sessionRegion) {
		return 0
	}
	r := s.sessionRegion[session]
	if r < 0 || r >= s.regions {
		return 0
	}
	return r
}

// Regions returns the label cardinality of the per-region series.
func (s *Sink) Regions() int {
	if s == nil {
		return 0
	}
	return s.regions
}

// ClassOf maps a session to its SLO class index (0 without a class map).
func (s *Sink) ClassOf(session int) int {
	if s == nil || session < 0 || session >= len(s.sessionClass) {
		return 0
	}
	c := s.sessionClass[session]
	if c < 0 || c >= s.numClasses {
		return 0
	}
	return c
}

// Classes returns the configured class names (nil when class labels are
// off).
func (s *Sink) Classes() []string {
	if s == nil {
		return nil
	}
	return s.classes
}

// className is the label value for class c ("default" when classes are
// unconfigured, so always-registered per-class families stay labeled).
func (s *Sink) className(c int) string {
	if c >= 0 && c < len(s.classes) {
		return s.classes[c]
	}
	return "default"
}

// crIndex flattens (class, region) into the per-(class,region) handle
// slices, clamping both out-of-range dimensions to 0.
func (s *Sink) crIndex(class, region int) int {
	if region < 0 || region >= s.regions {
		region = 0
	}
	if class < 0 || class >= s.numClasses {
		class = 0
	}
	return class*s.regions + region
}

// TaskOutcome counts one task's terminal outcome on the worker's counter
// shard, labeled with the task session's region and SLO class.
func (s *Sink) TaskOutcome(worker, region, class int, oc TaskOutcome) {
	if s == nil {
		return
	}
	i := s.crIndex(class, region)
	switch oc {
	case OutcomeCommit:
		s.commits[i].Inc(worker)
	case OutcomeReject:
		s.rejects[i].Inc(worker)
	case OutcomeNoChange:
		s.noChange[i].Inc(worker)
	}
}

// TaskConflict counts one lost cross-shard commit race.
func (s *Sink) TaskConflict(worker, region, class int) {
	if s == nil {
		return
	}
	s.conflicts[s.crIndex(class, region)].Inc(worker)
}

// TaskPhases accumulates one task's phase durations (ns).
func (s *Sink) TaskPhases(worker int, snapshotNs, walkNs, commitNs int64) {
	if s == nil {
		return
	}
	s.phaseSnapshot.Add(worker, snapshotNs)
	s.phaseWalk.Add(worker, walkNs)
	s.phaseCommit.Add(worker, commitNs)
}

// CacheEvals accumulates delay-cache outcome deltas from one task.
func (s *Sink) CacheEvals(worker int, hits, patches, rebuilds int64) {
	if s == nil {
		return
	}
	if hits != 0 {
		s.cacheHits.Add(worker, hits)
	}
	if patches != 0 {
		s.cachePatches.Add(worker, patches)
	}
	if rebuilds != 0 {
		s.cacheRebuilds.Add(worker, rebuilds)
	}
}

// SchedulerStats mirrors the pipelined scheduler's counters into gauges.
func (s *Sink) SchedulerStats(stalls, waits, queuePeak, inFlightPeak int) {
	if s == nil {
		return
	}
	s.schedStalls.Set(float64(stalls))
	s.schedWaits.Set(float64(waits))
	s.schedQueue.Set(float64(queuePeak))
	s.schedFlight.Set(float64(inFlightPeak))
}

// LedgerStats mirrors the shard ledger's commit-outcome counters into
// gauges — the ledger-level cross-check of the orchestrator's counters.
func (s *Sink) LedgerStats(commits, conflicts, infeasible int64) {
	if s == nil {
		return
	}
	s.ledgerCommit.Set(float64(commits))
	s.ledgerConfl.Set(float64(conflicts))
	s.ledgerInfeas.Set(float64(infeasible))
}

// Record emits one decision record: it fills the derived fields (region,
// wall time, objective delta), updates the event-scoped metrics, and
// appends to the trace ring. Called from the serialized event-handling /
// retire path, never from workers.
func (s *Sink) Record(rec DecisionRecord) {
	if s == nil {
		return
	}
	rec.Region = s.RegionOf(rec.Session)
	class := s.ClassOf(rec.Session)
	if len(s.classes) > 0 {
		rec.Class = s.className(class)
	}
	if rec.WallNs == 0 {
		rec.WallNs = time.Now().UnixNano()
	}
	if s.haveObjective {
		rec.ObjectiveDelta = rec.Objective - s.prevObjective
	}
	s.prevObjective = rec.Objective
	s.haveObjective = true

	// Health monitoring rides the serialized retire path: the flight
	// recorder advances its incident marker, then the sampler folds the
	// record into the current window (closing windows — and evaluating
	// alert rules — when the virtual clock crossed a boundary). Workers
	// never see any of this.
	if s.flight != nil {
		s.flight.noteRecord(&rec)
	}
	if s.sampler != nil {
		s.sampler.observe(&rec, class)
	}

	sh := s.eventShard
	if rec.DelayMS > 0 {
		s.classDelay[class].Observe(int64(rec.DelayMS * 1e3))
		s.classDelaySum[class] += rec.DelayMS
		s.classDelayN[class]++
		s.fairness.Set(s.jainLocked())
	}
	switch rec.Kind {
	case "depart":
		s.departs[rec.Region].Inc(sh)
		if !rec.Admitted {
			s.skips.Inc(sh)
		}
	case "arrive":
		s.arrivals[rec.Region].Inc(sh)
		if !rec.Admitted {
			s.drops.Inc(sh)
		}
	default:
		// Fault-injection kinds count into their own family, never into the
		// churn event/drop/skip counters.
		if c := s.faults[rec.Kind]; c != nil {
			c.Inc(sh)
		}
	}
	if rec.Stalled {
		s.stalls.Inc(sh)
	}
	if rec.CacheInvalidated > 0 {
		s.invalidations.Add(sh, int64(rec.CacheInvalidated))
	}
	s.reoptLat[s.crIndex(class, rec.Region)].Observe(rec.LatencyNs)
	s.objective.Set(rec.Objective)
	s.active.Set(float64(rec.ActiveSessions))
	if s.rec.Append(rec) {
		s.recDropped.Inc(sh)
	}
}

// jainLocked computes the Jain fairness index (Σx)²/(n·Σx²) over the
// per-class mean delays with at least one observation. 1 means every class
// sees the same mean delay; 1/n means one class absorbs all of it. Called
// only from the serialized Record path (like the running sums it reads).
func (s *Sink) jainLocked() float64 {
	var sum, sumSq float64
	n := 0
	for c := 0; c < s.numClasses; c++ {
		if s.classDelayN[c] == 0 {
			continue
		}
		m := s.classDelaySum[c] / float64(s.classDelayN[c])
		sum += m
		sumSq += m * m
		n++
	}
	if n == 0 || sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(n) * sumSq)
}

// Sampler exposes the windowed time-series sampler (nil when disabled).
func (s *Sink) Sampler() *Sampler {
	if s == nil {
		return nil
	}
	return s.sampler
}

// Alerts exposes the SLO burn-rate alert engine (nil when disabled).
func (s *Sink) Alerts() *AlertEngine {
	if s == nil {
		return nil
	}
	return s.alerts
}

// FlushSampler closes the sampler's final partial window so end-of-run
// exposition and alert evaluation see the full horizon. No-op when the
// sampler is off.
func (s *Sink) FlushSampler() {
	if s == nil {
		return
	}
	s.sampler.Flush()
}

// DistFreeze observes one coordinator freeze hold (grant → release, ns).
func (s *Sink) DistFreeze(ns int64) {
	if s == nil {
		return
	}
	s.distFreeze.Observe(ns)
}

// DistAbandon counts one frozen session abandoned by peer death/timeout.
func (s *Sink) DistAbandon() {
	if s == nil {
		return
	}
	s.distAbandons.Inc(s.eventShard)
}

// DistRetry counts one re-dialed runner attempt after a failed exchange.
func (s *Sink) DistRetry() {
	if s == nil {
		return
	}
	s.distRetries.Inc(s.eventShard)
}

// faultKinds are the record kinds routed to vconf_faults_injected_total
// (workload.EventKind.String() for the fault kinds).
var faultKinds = []string{"agent-fail", "agent-recover", "region-outage", "region-recover", "degrade", "flash-crowd"}

// Evacuation counts one orphan's re-home attempt (ok or reject) and its
// latency. Called from the serialized fault-handling path.
func (s *Sink) Evacuation(region int, ok bool, latencyNs int64) {
	if s == nil {
		return
	}
	if region < 0 || region >= s.regions {
		region = 0
	}
	sh := s.eventShard
	s.orphans.Inc(sh)
	if ok {
		s.evacOK[region].Inc(sh)
	} else {
		s.evacRej[region].Inc(sh)
	}
	s.evacLat.Observe(latencyNs)
}

// Incident records one incident's time-to-recovery.
func (s *Sink) Incident(ttrNs int64) {
	if s == nil {
		return
	}
	s.recoveryLat.Observe(ttrNs)
}

// DegradedReject counts one arrival rejected while the fleet was impaired.
func (s *Sink) DegradedReject(region int) {
	if s == nil {
		return
	}
	if region < 0 || region >= s.regions {
		region = 0
	}
	s.degRejects[region].Inc(s.eventShard)
}

// FeedTick appends the headline metrics to the sink's evolution series at
// virtual time t (out-of-order ticks are dropped, matching trace.Series'
// append contract).
func (s *Sink) FeedTick(t float64) {
	if s == nil {
		return
	}
	var commits, conflicts int64
	for i := range s.commits {
		commits += s.commits[i].Value()
		conflicts += s.conflicts[i].Value()
	}
	warm := s.cacheHits.Value() + s.cachePatches.Value()
	cold := s.cacheRebuilds.Value()
	pct := 0.0
	if warm+cold > 0 {
		pct = 100 * float64(warm) / float64(warm+cold)
	}
	_ = s.feedObjective.Append(t, s.objective.Value())
	_ = s.feedActive.Append(t, s.active.Value())
	_ = s.feedCommits.Append(t, float64(commits))
	_ = s.feedConflicts.Append(t, float64(conflicts))
	_ = s.feedCacheWarmPct.Append(t, pct)
}

// Series returns the evolution series FeedTick maintains (nil when
// disabled), ready for trace.Series resampling/merging.
func (s *Sink) Series() []*trace.Series {
	if s == nil {
		return nil
	}
	return []*trace.Series{s.feedObjective, s.feedActive, s.feedCommits, s.feedConflicts, s.feedCacheWarmPct}
}

// CounterfactualSummary aggregates counterfactual-k over the held records:
// the count of committed decisions with a valid 2nd-best gap, plus the
// mean and p99 of that gap (the regret had the runner-up been chosen).
func (s *Sink) CounterfactualSummary() (n int, mean, p99 float64) {
	if s == nil {
		return 0, 0, 0
	}
	var gaps []float64
	for _, rec := range s.rec.Records() {
		if rec.CfValid && rec.Commits > 0 {
			gaps = append(gaps, rec.CfGap)
		}
	}
	if len(gaps) == 0 {
		return 0, 0, 0
	}
	sum := 0.0
	for _, g := range gaps {
		sum += g
	}
	sort.Float64s(gaps)
	idx := int(math.Ceil(0.99*float64(len(gaps)))) - 1
	if idx < 0 {
		idx = 0
	}
	return len(gaps), sum / float64(len(gaps)), gaps[idx]
}
