package telemetry

import (
	"math"
	"sort"
	"strconv"
	"time"

	"vconf/internal/trace"
)

// TaskOutcome classifies one re-optimization task's terminal outcome for
// the per-region outcome counters.
type TaskOutcome int

const (
	OutcomeCommit TaskOutcome = iota
	OutcomeReject
	OutcomeNoChange
)

// Config sizes a Sink.
type Config struct {
	// Workers hints the counter shard width: one cache-line-padded cell
	// per solver worker plus one for the event loop. 0 defaults to 9
	// (8 workers + event loop); indices wrap, so an under-estimate is
	// safe — it costs sharing, never correctness.
	Workers int
	// TraceCapacity bounds the decision-record ring. 0 defaults to 4096.
	TraceCapacity int
	// SessionRegion maps session ID → region for per-region metric labels
	// (e.g. a geo-federated fleet's home regions). Nil labels everything
	// region 0.
	SessionRegion []int
	// Regions fixes the region count; 0 derives it from SessionRegion
	// (max+1, minimum 1).
	Regions int
}

// Sink is the instrumentation facade the orchestrator and schedulers call
// into. All methods are nil-receiver safe: a nil *Sink is the disabled
// state, reducing every call site to a pointer test with zero allocation
// (the alloc-pin tests enforce this), so hot paths carry no overhead when
// telemetry is off.
type Sink struct {
	reg *Registry
	rec *Recorder

	sessionRegion []int
	regions       int

	// Per-region handle slices, resolved once at construction so the hot
	// path is an index, not a registry lookup.
	commits   []*Counter
	rejects   []*Counter
	noChange  []*Counter
	conflicts []*Counter
	arrivals  []*Counter
	departs   []*Counter
	reoptLat  []*Histogram

	// Fault-injection and self-healing instrumentation: injected fault
	// events by kind, orphaned sessions, per-region evacuation outcomes,
	// evacuation-latency and time-to-recovery histograms, and
	// rejects-during-degradation.
	faults      map[string]*Counter
	orphans     *Counter
	evacOK      []*Counter
	evacRej     []*Counter
	evacLat     *Histogram
	recoveryLat *Histogram
	degRejects  []*Counter

	// Global counters.
	stalls        *Counter
	drops         *Counter
	skips         *Counter
	invalidations *Counter
	cacheHits     *Counter
	cachePatches  *Counter
	cacheRebuilds *Counter
	phaseSnapshot *Counter
	phaseWalk     *Counter
	phaseCommit   *Counter

	// Gauges (event-loop writers only).
	objective    *Gauge
	active       *Gauge
	schedStalls  *Gauge
	schedWaits   *Gauge
	schedQueue   *Gauge
	schedFlight  *Gauge
	ledgerCommit *Gauge
	ledgerConfl  *Gauge
	ledgerInfeas *Gauge

	// prevObjective backs ObjectiveDelta (guarded by the recorder mutex's
	// caller — Record is invoked from the serialized event-retire path).
	prevObjective    float64
	haveObjective    bool
	eventShard       int
	feedObjective    *trace.Series
	feedActive       *trace.Series
	feedCommits      *trace.Series
	feedConflicts    *trace.Series
	feedCacheWarmPct *trace.Series
}

// New builds an enabled sink. A nil *Sink (not New's result) is the
// disabled state.
func New(cfg Config) *Sink {
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.TraceCapacity <= 0 {
		cfg.TraceCapacity = 4096
	}
	regions := cfg.Regions
	if regions <= 0 {
		regions = 1
		for _, r := range cfg.SessionRegion {
			if r+1 > regions {
				regions = r + 1
			}
		}
	}
	s := &Sink{
		reg:           NewRegistry(cfg.Workers + 1),
		rec:           NewRecorder(cfg.TraceCapacity),
		sessionRegion: cfg.SessionRegion,
		regions:       regions,
		eventShard:    cfg.Workers,
	}
	s.commits = make([]*Counter, regions)
	s.rejects = make([]*Counter, regions)
	s.noChange = make([]*Counter, regions)
	s.conflicts = make([]*Counter, regions)
	s.arrivals = make([]*Counter, regions)
	s.departs = make([]*Counter, regions)
	s.reoptLat = make([]*Histogram, regions)
	s.evacOK = make([]*Counter, regions)
	s.evacRej = make([]*Counter, regions)
	s.degRejects = make([]*Counter, regions)
	for r := 0; r < regions; r++ {
		lbl := Label{Key: "region", Value: strconv.Itoa(r)}
		s.commits[r] = s.reg.Counter("vconf_commits_total", "re-optimization proposals committed", lbl)
		s.rejects[r] = s.reg.Counter("vconf_rejects_total", "re-optimization proposals rejected at commit validation", lbl)
		s.noChange[r] = s.reg.Counter("vconf_nochange_total", "re-optimization walks that found no improvement", lbl)
		s.conflicts[r] = s.reg.Counter("vconf_conflicts_total", "commit attempts that lost a cross-shard race", lbl)
		s.arrivals[r] = s.reg.Counter("vconf_events_total", "churn events handled", Label{Key: "kind", Value: "arrive"}, lbl)
		s.departs[r] = s.reg.Counter("vconf_events_total", "churn events handled", Label{Key: "kind", Value: "depart"}, lbl)
		s.reoptLat[r] = s.reg.Histogram("vconf_reopt_latency_ns", "per-event re-optimization barrier latency (ns)", lbl)
		s.evacOK[r] = s.reg.Counter("vconf_evacuations_total", "orphaned sessions re-homed (ok) or dropped (reject) during healing",
			Label{Key: "result", Value: "ok"}, lbl)
		s.evacRej[r] = s.reg.Counter("vconf_evacuations_total", "orphaned sessions re-homed (ok) or dropped (reject) during healing",
			Label{Key: "result", Value: "reject"}, lbl)
		s.degRejects[r] = s.reg.Counter("vconf_degraded_rejects_total", "arrivals rejected while agents were failed or degraded", lbl)
	}
	s.faults = make(map[string]*Counter, len(faultKinds))
	for _, k := range faultKinds {
		s.faults[k] = s.reg.Counter("vconf_faults_injected_total", "fault events injected, by kind", Label{Key: "kind", Value: k})
	}
	s.orphans = s.reg.Counter("vconf_orphans_total", "sessions orphaned by failures and degradations")
	s.evacLat = s.reg.Histogram("vconf_evacuation_latency_ns", "per-orphan evacuation (re-home) latency (ns)")
	s.recoveryLat = s.reg.Histogram("vconf_time_to_recovery_ns", "per-incident time to recovery (ns)")
	s.stalls = s.reg.Counter("vconf_admission_stalls_total", "events whose admission waited in the pipelined scheduler")
	s.drops = s.reg.Counter("vconf_dropped_arrivals_total", "arrivals rejected at admission")
	s.skips = s.reg.Counter("vconf_skipped_departures_total", "departures for never-admitted sessions")
	s.invalidations = s.reg.Counter("vconf_delay_cache_invalidations_total", "delay-cache entries torn down by departures")
	s.cacheHits = s.reg.Counter("vconf_delay_cache_evals_total", "delay-cache evaluation outcomes", Label{Key: "result", Value: "hit"})
	s.cachePatches = s.reg.Counter("vconf_delay_cache_evals_total", "delay-cache evaluation outcomes", Label{Key: "result", Value: "patch"})
	s.cacheRebuilds = s.reg.Counter("vconf_delay_cache_evals_total", "delay-cache evaluation outcomes", Label{Key: "result", Value: "rebuild"})
	s.phaseSnapshot = s.reg.Counter("vconf_task_phase_ns_total", "cumulative task time per phase (ns)", Label{Key: "phase", Value: "snapshot"})
	s.phaseWalk = s.reg.Counter("vconf_task_phase_ns_total", "cumulative task time per phase (ns)", Label{Key: "phase", Value: "walk"})
	s.phaseCommit = s.reg.Counter("vconf_task_phase_ns_total", "cumulative task time per phase (ns)", Label{Key: "phase", Value: "commit"})
	s.objective = s.reg.Gauge("vconf_objective", "Σ Φ_s over active sessions")
	s.active = s.reg.Gauge("vconf_active_sessions", "live session count")
	s.schedStalls = s.reg.Gauge("vconf_sched_admission_stalls", "pipelined scheduler: admission stalls")
	s.schedWaits = s.reg.Gauge("vconf_sched_reopt_waits", "pipelined scheduler: re-optimization waits")
	s.schedQueue = s.reg.Gauge("vconf_sched_queue_depth_peak", "pipelined scheduler: pending-queue high-water mark")
	s.schedFlight = s.reg.Gauge("vconf_sched_in_flight_peak", "pipelined scheduler: in-flight high-water mark")
	s.ledgerCommit = s.reg.Gauge("vconf_shard_ledger_commits", "shard ledger: CommitDelta outcomes committed")
	s.ledgerConfl = s.reg.Gauge("vconf_shard_ledger_conflicts", "shard ledger: CommitDelta outcomes conflicted")
	s.ledgerInfeas = s.reg.Gauge("vconf_shard_ledger_infeasible", "shard ledger: CommitDelta outcomes infeasible")
	s.feedObjective = trace.NewSeries("telemetry/objective")
	s.feedActive = trace.NewSeries("telemetry/active_sessions")
	s.feedCommits = trace.NewSeries("telemetry/commits_total")
	s.feedConflicts = trace.NewSeries("telemetry/conflicts_total")
	s.feedCacheWarmPct = trace.NewSeries("telemetry/cache_warm_pct")
	return s
}

// Enabled reports whether the sink is live.
func (s *Sink) Enabled() bool { return s != nil }

// Registry exposes the metric registry (nil when disabled).
func (s *Sink) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Recorder exposes the decision-trace ring (nil when disabled).
func (s *Sink) Recorder() *Recorder {
	if s == nil {
		return nil
	}
	return s.rec
}

// EventShard is the counter shard reserved for the event loop / retire
// path (workers use their own indices).
func (s *Sink) EventShard() int {
	if s == nil {
		return 0
	}
	return s.eventShard
}

// RegionOf maps a session to its metric region (0 without a map).
func (s *Sink) RegionOf(session int) int {
	if s == nil || session < 0 || session >= len(s.sessionRegion) {
		return 0
	}
	r := s.sessionRegion[session]
	if r < 0 || r >= s.regions {
		return 0
	}
	return r
}

// Regions returns the label cardinality of the per-region series.
func (s *Sink) Regions() int {
	if s == nil {
		return 0
	}
	return s.regions
}

// TaskOutcome counts one task's terminal outcome on the worker's counter
// shard, labeled with the task session's region.
func (s *Sink) TaskOutcome(worker, region int, oc TaskOutcome) {
	if s == nil {
		return
	}
	if region < 0 || region >= s.regions {
		region = 0
	}
	switch oc {
	case OutcomeCommit:
		s.commits[region].Inc(worker)
	case OutcomeReject:
		s.rejects[region].Inc(worker)
	case OutcomeNoChange:
		s.noChange[region].Inc(worker)
	}
}

// TaskConflict counts one lost cross-shard commit race.
func (s *Sink) TaskConflict(worker, region int) {
	if s == nil {
		return
	}
	if region < 0 || region >= s.regions {
		region = 0
	}
	s.conflicts[region].Inc(worker)
}

// TaskPhases accumulates one task's phase durations (ns).
func (s *Sink) TaskPhases(worker int, snapshotNs, walkNs, commitNs int64) {
	if s == nil {
		return
	}
	s.phaseSnapshot.Add(worker, snapshotNs)
	s.phaseWalk.Add(worker, walkNs)
	s.phaseCommit.Add(worker, commitNs)
}

// CacheEvals accumulates delay-cache outcome deltas from one task.
func (s *Sink) CacheEvals(worker int, hits, patches, rebuilds int64) {
	if s == nil {
		return
	}
	if hits != 0 {
		s.cacheHits.Add(worker, hits)
	}
	if patches != 0 {
		s.cachePatches.Add(worker, patches)
	}
	if rebuilds != 0 {
		s.cacheRebuilds.Add(worker, rebuilds)
	}
}

// SchedulerStats mirrors the pipelined scheduler's counters into gauges.
func (s *Sink) SchedulerStats(stalls, waits, queuePeak, inFlightPeak int) {
	if s == nil {
		return
	}
	s.schedStalls.Set(float64(stalls))
	s.schedWaits.Set(float64(waits))
	s.schedQueue.Set(float64(queuePeak))
	s.schedFlight.Set(float64(inFlightPeak))
}

// LedgerStats mirrors the shard ledger's commit-outcome counters into
// gauges — the ledger-level cross-check of the orchestrator's counters.
func (s *Sink) LedgerStats(commits, conflicts, infeasible int64) {
	if s == nil {
		return
	}
	s.ledgerCommit.Set(float64(commits))
	s.ledgerConfl.Set(float64(conflicts))
	s.ledgerInfeas.Set(float64(infeasible))
}

// Record emits one decision record: it fills the derived fields (region,
// wall time, objective delta), updates the event-scoped metrics, and
// appends to the trace ring. Called from the serialized event-handling /
// retire path, never from workers.
func (s *Sink) Record(rec DecisionRecord) {
	if s == nil {
		return
	}
	rec.Region = s.RegionOf(rec.Session)
	if rec.WallNs == 0 {
		rec.WallNs = time.Now().UnixNano()
	}
	if s.haveObjective {
		rec.ObjectiveDelta = rec.Objective - s.prevObjective
	}
	s.prevObjective = rec.Objective
	s.haveObjective = true

	sh := s.eventShard
	switch rec.Kind {
	case "depart":
		s.departs[rec.Region].Inc(sh)
		if !rec.Admitted {
			s.skips.Inc(sh)
		}
	case "arrive":
		s.arrivals[rec.Region].Inc(sh)
		if !rec.Admitted {
			s.drops.Inc(sh)
		}
	default:
		// Fault-injection kinds count into their own family, never into the
		// churn event/drop/skip counters.
		if c := s.faults[rec.Kind]; c != nil {
			c.Inc(sh)
		}
	}
	if rec.Stalled {
		s.stalls.Inc(sh)
	}
	if rec.CacheInvalidated > 0 {
		s.invalidations.Add(sh, int64(rec.CacheInvalidated))
	}
	s.reoptLat[rec.Region].Observe(rec.LatencyNs)
	s.objective.Set(rec.Objective)
	s.active.Set(float64(rec.ActiveSessions))
	s.rec.Append(rec)
}

// faultKinds are the record kinds routed to vconf_faults_injected_total
// (workload.EventKind.String() for the fault kinds).
var faultKinds = []string{"agent-fail", "agent-recover", "region-outage", "region-recover", "degrade", "flash-crowd"}

// Evacuation counts one orphan's re-home attempt (ok or reject) and its
// latency. Called from the serialized fault-handling path.
func (s *Sink) Evacuation(region int, ok bool, latencyNs int64) {
	if s == nil {
		return
	}
	if region < 0 || region >= s.regions {
		region = 0
	}
	sh := s.eventShard
	s.orphans.Inc(sh)
	if ok {
		s.evacOK[region].Inc(sh)
	} else {
		s.evacRej[region].Inc(sh)
	}
	s.evacLat.Observe(latencyNs)
}

// Incident records one incident's time-to-recovery.
func (s *Sink) Incident(ttrNs int64) {
	if s == nil {
		return
	}
	s.recoveryLat.Observe(ttrNs)
}

// DegradedReject counts one arrival rejected while the fleet was impaired.
func (s *Sink) DegradedReject(region int) {
	if s == nil {
		return
	}
	if region < 0 || region >= s.regions {
		region = 0
	}
	s.degRejects[region].Inc(s.eventShard)
}

// FeedTick appends the headline metrics to the sink's evolution series at
// virtual time t (out-of-order ticks are dropped, matching trace.Series'
// append contract).
func (s *Sink) FeedTick(t float64) {
	if s == nil {
		return
	}
	var commits, conflicts int64
	for r := 0; r < s.regions; r++ {
		commits += s.commits[r].Value()
		conflicts += s.conflicts[r].Value()
	}
	warm := s.cacheHits.Value() + s.cachePatches.Value()
	cold := s.cacheRebuilds.Value()
	pct := 0.0
	if warm+cold > 0 {
		pct = 100 * float64(warm) / float64(warm+cold)
	}
	_ = s.feedObjective.Append(t, s.objective.Value())
	_ = s.feedActive.Append(t, s.active.Value())
	_ = s.feedCommits.Append(t, float64(commits))
	_ = s.feedConflicts.Append(t, float64(conflicts))
	_ = s.feedCacheWarmPct.Append(t, pct)
}

// Series returns the evolution series FeedTick maintains (nil when
// disabled), ready for trace.Series resampling/merging.
func (s *Sink) Series() []*trace.Series {
	if s == nil {
		return nil
	}
	return []*trace.Series{s.feedObjective, s.feedActive, s.feedCommits, s.feedConflicts, s.feedCacheWarmPct}
}

// CounterfactualSummary aggregates counterfactual-k over the held records:
// the count of committed decisions with a valid 2nd-best gap, plus the
// mean and p99 of that gap (the regret had the runner-up been chosen).
func (s *Sink) CounterfactualSummary() (n int, mean, p99 float64) {
	if s == nil {
		return 0, 0, 0
	}
	var gaps []float64
	for _, rec := range s.rec.Records() {
		if rec.CfValid && rec.Commits > 0 {
			gaps = append(gaps, rec.CfGap)
		}
	}
	if len(gaps) == 0 {
		return 0, 0, 0
	}
	sum := 0.0
	for _, g := range gaps {
		sum += g
	}
	sort.Float64s(gaps)
	idx := int(math.Ceil(0.99*float64(len(gaps)))) - 1
	if idx < 0 {
		idx = 0
	}
	return len(gaps), sum / float64(len(gaps)), gaps[idx]
}
