package telemetry

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestNilSinkSafe calls every Sink method on a nil receiver: each must be a
// no-op, never a panic — that is the disabled-telemetry contract.
func TestNilSinkSafe(t *testing.T) {
	var s *Sink
	if s.Enabled() {
		t.Fatal("nil sink reports enabled")
	}
	if s.Registry() != nil || s.Recorder() != nil || s.Series() != nil {
		t.Fatal("nil sink leaked non-nil components")
	}
	if s.RegionOf(3) != 0 || s.Regions() != 0 || s.EventShard() != 0 {
		t.Fatal("nil sink returned nonzero identities")
	}
	s.TaskOutcome(1, 0, 0, OutcomeCommit)
	s.TaskConflict(1, 0, 0)
	s.TaskPhases(1, 1, 2, 3)
	s.CacheEvals(1, 1, 2, 3)
	s.SchedulerStats(1, 2, 3, 4)
	s.LedgerStats(1, 2, 3)
	s.Record(DecisionRecord{Kind: "arrive"})
	s.FeedTick(1.0)
	if n, mean, p99 := s.CounterfactualSummary(); n != 0 || mean != 0 || p99 != 0 {
		t.Fatal("nil sink returned a counterfactual summary")
	}
}

// TestNilSinkZeroAlloc pins the disabled hot path at zero allocations:
// every instrumentation call on a nil sink must reduce to a pointer test.
func TestNilSinkZeroAlloc(t *testing.T) {
	var s *Sink
	allocs := testing.AllocsPerRun(1000, func() {
		s.TaskOutcome(0, 0, 0, OutcomeCommit)
		s.TaskConflict(0, 0, 0)
		s.TaskPhases(0, 1, 2, 3)
		s.CacheEvals(0, 1, 2, 3)
		_ = s.RegionOf(5)
	})
	if allocs != 0 {
		t.Fatalf("nil-sink hot path allocates %.1f/op, want 0", allocs)
	}
}

// TestEnabledHotPathZeroAlloc pins the enabled worker-side hot path too:
// sharded counter bumps and histogram observes are lock-free and
// allocation-free.
func TestEnabledHotPathZeroAlloc(t *testing.T) {
	s := New(Config{Workers: 4})
	allocs := testing.AllocsPerRun(1000, func() {
		s.TaskOutcome(1, 0, 0, OutcomeCommit)
		s.TaskConflict(2, 0, 0)
		s.TaskPhases(3, 10, 20, 30)
		s.CacheEvals(0, 1, 0, 1)
	})
	if allocs != 0 {
		t.Fatalf("enabled worker hot path allocates %.1f/op, want 0", allocs)
	}
}

func TestSinkRegionMapping(t *testing.T) {
	s := New(Config{Workers: 2, SessionRegion: []int{0, 1, 2, 1}})
	if s.Regions() != 3 {
		t.Fatalf("Regions = %d, want 3", s.Regions())
	}
	if s.RegionOf(2) != 2 || s.RegionOf(3) != 1 {
		t.Fatalf("RegionOf mapping wrong: %d %d", s.RegionOf(2), s.RegionOf(3))
	}
	if s.RegionOf(-1) != 0 || s.RegionOf(99) != 0 {
		t.Fatal("out-of-range sessions must map to region 0")
	}
	s.TaskOutcome(0, 2, 0, OutcomeCommit)
	s.Record(DecisionRecord{Kind: "arrive", Session: 2, Admitted: true})
	var sb strings.Builder
	if err := s.Registry().WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `vconf_commits_total{region="2"} 1`) {
		t.Errorf("per-region commit counter missing:\n%s", out)
	}
	if !strings.Contains(out, `vconf_events_total{kind="arrive",region="2"} 1`) {
		t.Errorf("per-region event counter missing:\n%s", out)
	}
}

func TestSinkRecordDerivedFields(t *testing.T) {
	s := New(Config{Workers: 1})
	s.Record(DecisionRecord{Kind: "arrive", Session: 0, Admitted: true, Objective: 10})
	s.Record(DecisionRecord{Kind: "depart", Session: 0, Admitted: true, Objective: 7, CacheInvalidated: 1})
	recs := s.Recorder().Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].ObjectiveDelta != 0 {
		t.Fatalf("first record delta = %v, want 0 (no prior objective)", recs[0].ObjectiveDelta)
	}
	if recs[1].ObjectiveDelta != -3 {
		t.Fatalf("second record delta = %v, want -3", recs[1].ObjectiveDelta)
	}
	if recs[0].WallNs == 0 {
		t.Fatal("WallNs not stamped")
	}
	// Record must not bump the task-scoped commit counters (those are
	// worker-side), but must count the event and the invalidation.
	var sb strings.Builder
	if err := s.Registry().WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `vconf_events_total{kind="depart",region="0"} 1`) {
		t.Errorf("depart event not counted:\n%s", out)
	}
	if !strings.Contains(out, "vconf_delay_cache_invalidations_total 1") {
		t.Errorf("invalidation not counted:\n%s", out)
	}
	if strings.Contains(out, `vconf_commits_total{region="0"} 1`) {
		t.Errorf("Record double-counted commits:\n%s", out)
	}
}

func TestCounterfactualSummary(t *testing.T) {
	s := New(Config{Workers: 1})
	gaps := []float64{0.1, 0.2, 0.3, 0.4}
	for _, g := range gaps {
		s.Record(DecisionRecord{Kind: "arrive", Admitted: true, Commits: 1, CfGap: g, CfValid: true})
	}
	// Invalid / uncommitted records must not contribute.
	s.Record(DecisionRecord{Kind: "arrive", Admitted: true, Commits: 1, CfGap: 99, CfValid: false})
	s.Record(DecisionRecord{Kind: "arrive", Admitted: true, Commits: 0, CfGap: 99, CfValid: true})
	n, mean, p99 := s.CounterfactualSummary()
	if n != 4 {
		t.Fatalf("n = %d, want 4", n)
	}
	if mean < 0.2499 || mean > 0.2501 {
		t.Fatalf("mean = %v, want 0.25", mean)
	}
	if p99 != 0.4 {
		t.Fatalf("p99 = %v, want 0.4", p99)
	}
}

func TestFeedTickSeries(t *testing.T) {
	s := New(Config{Workers: 1})
	s.TaskOutcome(0, 0, 0, OutcomeCommit)
	s.CacheEvals(0, 3, 0, 1)
	s.Record(DecisionRecord{Kind: "arrive", Admitted: true, Objective: 5, ActiveSessions: 1})
	s.FeedTick(10)
	s.FeedTick(20)
	series := s.Series()
	if len(series) != 5 {
		t.Fatalf("got %d series, want 5", len(series))
	}
	for _, sr := range series {
		if sr.Len() != 2 {
			t.Fatalf("series %s has %d points, want 2", sr.Name, sr.Len())
		}
	}
	if v, ok := series[0].At(10); !ok || v != 5 {
		t.Fatalf("objective series at t=10 = (%v,%v), want (5,true)", v, ok)
	}
	if v, ok := series[4].At(10); !ok || v != 75 {
		t.Fatalf("cache-warm%% series = (%v,%v), want (75,true)", v, ok)
	}
}

func TestServeEndpoints(t *testing.T) {
	s := New(Config{Workers: 1})
	s.TaskOutcome(0, 0, 0, OutcomeCommit)
	s.Record(DecisionRecord{Kind: "arrive", Admitted: true, Commits: 1})
	srv, err := Serve(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) (int, string) {
		cl := &http.Client{Timeout: 5 * time.Second}
		resp, err := cl.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "vconf_commits_total") {
		t.Fatalf("/metrics: code=%d body=%q", code, body)
	}
	if code, body := get("/metrics.json"); code != 200 || !strings.Contains(body, "vconf_commits_total") {
		t.Fatalf("/metrics.json: code=%d body=%q", code, body)
	}
	if code, body := get("/trace.jsonl"); code != 200 || !strings.Contains(body, `"kind":"arrive"`) {
		t.Fatalf("/trace.jsonl: code=%d body=%q", code, body)
	}
	if code, body := get("/trace.chrome.json"); code != 200 || !strings.Contains(body, "traceEvents") {
		t.Fatalf("/trace.chrome.json: code=%d body=%q", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline: code=%d", code)
	}
}

func TestServeNilSink(t *testing.T) {
	srv, err := Serve(nil, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := &http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("nil sink /metrics code = %d, want 503", resp.StatusCode)
	}
}
