// Package shard implements the lock-striped concurrent capacity ledger: the
// fleet's per-agent down/up/task usage partitioned into P deterministic
// ID-range shards, each guarding its slice behind its own lock, with a
// commit pipeline that lets proposals touching disjoint shards proceed
// fully in parallel.
//
// The paper's control plane decomposes by session (Φ = Σ_s Φ_s), so the
// only cross-session coupling is capacity — constraints (5)–(7) sum session
// loads per agent. A single-variable migration touches O(session) agents,
// not the fleet, which makes capacity state an ideal candidate for
// striping: route the proposal's touched-agent set to the shards it
// intersects, lock those shards in canonical (ascending) order, re-validate
// with the exact per-shard restriction of cost.FitsRepairDelta, and apply
// or reject atomically. Related systems scale conferencing control planes
// exactly this way — vSkyConf distributes surrogate placement so no
// coordinator owns global state; Celerity's rate control is fully
// decentralized — and the same holds here: nothing in the commit path ever
// takes a fleet-wide lock.
//
// Pipeline (one commit):
//
//  1. Route: map the union of the candidate and current loads' touched
//     agents (cost.SparseLoad.Touched) onto shard indices — O(touched).
//  2. Lock: acquire the routed shards' locks in ascending shard order.
//     Every committer uses the same canonical order, so the pipeline is
//     deadlock-free by construction.
//  3. Validate: per routed shard, check the exact range restriction of
//     FitsRepairDelta against the *live* usage (not the snapshot the
//     proposal was evaluated on).
//  4. Apply or reject: on success swap current → candidate load and bump
//     the routed shards' epochs; on failure restore and report whether the
//     snapshot was stale (Conflict — retry with a fresh snapshot) or the
//     proposal genuinely does not fit (Infeasible — drop it).
//
// Workers evaluate proposals against epoch-stamped snapshots
// (SnapshotInto): each shard's range is copied under that shard's lock and
// stamped with its epoch. Snapshots are per-shard consistent but may tear
// across shards; commit-time validation is what guarantees safety, the
// epochs only classify rejections. With P = 1 the pipeline degenerates to
// exactly the single global lock — same arithmetic, same operation order —
// which the equivalence tests pin bit for bit.
//
// All float arithmetic lives in internal/cost range primitives
// (AddSparseRange, FitsRepairDeltaRange, ...); this package contributes
// only routing, locking, and epochs, so sharded and dense results are
// bit-identical by construction.
package shard

import (
	"fmt"
	"sync"
	"sync/atomic"

	"vconf/internal/cost"
	"vconf/internal/model"
)

// CommitResult classifies the outcome of one commit attempt.
type CommitResult int

const (
	// Committed: validation passed, the ledger now holds the candidate load.
	Committed CommitResult = iota + 1
	// Conflict: validation failed and at least one routed shard's epoch
	// moved since the caller's snapshot — the proposal was built on stale
	// residual capacities. Retry against a fresh snapshot.
	Conflict
	// Infeasible: validation failed with every routed shard unchanged since
	// the snapshot — the proposal does not fit current state and a retry
	// from the same state cannot help.
	Infeasible
)

// String implements fmt.Stringer.
func (r CommitResult) String() string {
	switch r {
	case Committed:
		return "committed"
	case Conflict:
		return "conflict"
	case Infeasible:
		return "infeasible"
	default:
		return fmt.Sprintf("CommitResult(%d)", int(r))
	}
}

// Epochs records per-shard epoch counters observed at snapshot time.
type Epochs []uint64

// Route is a reusable touched-shard set. Callers on the commit hot path
// keep one per worker so routing allocates nothing at steady state.
type Route struct {
	mark []bool
	list []int32
}

// reset prepares the route for a ledger with p shards.
func (r *Route) reset(p int) {
	if len(r.mark) != p {
		r.mark = make([]bool, p)
		r.list = make([]int32, 0, p)
	}
	for _, s := range r.list {
		r.mark[s] = false
	}
	r.list = r.list[:0]
}

func (r *Route) add(s int32) {
	if !r.mark[s] {
		r.mark[s] = true
		r.list = append(r.list, s)
	}
}

// sort orders the routed shards ascending — the canonical lock order.
// Insertion sort: routes are a handful of entries.
func (r *Route) sort() {
	t := r.list
	for i := 1; i < len(t); i++ {
		for j := i; j > 0 && t[j-1] > t[j]; j-- {
			t[j-1], t[j] = t[j], t[j-1]
		}
	}
}

// Shards returns the routed shard indices (ascending after a pipeline
// call). Shared slice; valid until the route's next use.
func (r *Route) Shards() []int32 { return r.list }

// pad keeps each shard's lock and epoch on its own cache line so
// uncontended commits on neighboring shards do not false-share.
type shardState struct {
	mu    sync.Mutex
	epoch uint64
	_     [48]byte
}

// Ledger is the lock-striped capacity ledger. The usage arithmetic lives in
// an inner dense cost.Ledger; shard i exclusively guards the agent ID range
// [bounds[i], bounds[i+1]), so concurrent range operations under distinct
// shard locks never touch the same agent slot.
//
// It satisfies cost.LedgerAPI: those whole-fleet convenience methods lock
// every shard in canonical order and delegate — control-plane rate
// (bootstrap, departures, invariant checks). The concurrent hot path is
// SnapshotInto + CommitDelta.
type Ledger struct {
	inner   *cost.Ledger
	sc      *model.Scenario
	shards  []shardState
	bounds  []int32 // len P+1; shard i covers [bounds[i], bounds[i+1])
	shardOf []int32 // agent → shard index

	// Ledger-level commit-outcome counters (atomic, bumped outside the
	// stripe locks): the observability cross-check of the orchestrator's
	// task counters, always on — one uncontended atomic add per commit.
	committed  atomic.Int64
	conflicted atomic.Int64
	infeasible atomic.Int64
}

// Stats is the ledger-level view of CommitDelta outcomes.
type Stats struct {
	Committed  int64
	Conflicts  int64
	Infeasible int64
}

// Stats returns the cumulative CommitDelta outcome counts.
func (sl *Ledger) Stats() Stats {
	return Stats{
		Committed:  sl.committed.Load(),
		Conflicts:  sl.conflicted.Load(),
		Infeasible: sl.infeasible.Load(),
	}
}

// Compile-time check: the sharded ledger satisfies the same API as the
// dense one.
var _ cost.LedgerAPI = (*Ledger)(nil)

// New creates an empty sharded ledger with p ID-range shards over the
// scenario's agents. p is clamped to [1, NumAgents]; ranges are balanced
// (⌈L/p⌉ or ⌊L/p⌋ agents each) and deterministic in (L, p).
func New(sc *model.Scenario, p int) *Ledger {
	l := sc.NumAgents()
	if p < 1 {
		p = 1
	}
	if p > l {
		p = l
	}
	sl := &Ledger{
		inner:   cost.NewLedger(sc),
		sc:      sc,
		shards:  make([]shardState, p),
		bounds:  make([]int32, p+1),
		shardOf: make([]int32, l),
	}
	// Pre-allocate the scale array so a mid-run SetCapacityScale (fault
	// injection) under one stripe lock never races readers under other
	// stripes' locks on the lazy slice-header publication.
	sl.inner.EnsureScale()
	for i := 0; i <= p; i++ {
		sl.bounds[i] = int32(i * l / p)
	}
	for i := 0; i < p; i++ {
		for a := sl.bounds[i]; a < sl.bounds[i+1]; a++ {
			sl.shardOf[a] = int32(i)
		}
	}
	return sl
}

// NumShards returns the shard count P.
func (sl *Ledger) NumShards() int { return len(sl.shards) }

// ShardOf returns the shard index guarding agent l.
func (sl *Ledger) ShardOf(l model.AgentID) int { return int(sl.shardOf[l]) }

// Bounds returns the agent range [lo, hi) of shard i.
func (sl *Ledger) Bounds(i int) (lo, hi int) {
	return int(sl.bounds[i]), int(sl.bounds[i+1])
}

// lockAll acquires every shard lock in canonical order.
func (sl *Ledger) lockAll() {
	for i := range sl.shards {
		sl.shards[i].mu.Lock()
	}
}

func (sl *Ledger) unlockAll() {
	for i := range sl.shards {
		sl.shards[i].mu.Unlock()
	}
}

// bumpAll advances every shard's epoch (callers hold all locks).
func (sl *Ledger) bumpAll() {
	for i := range sl.shards {
		sl.shards[i].epoch++
	}
}

// ---------------------------------------------------------------------------
// cost.LedgerAPI: whole-fleet convenience surface (lock-all + delegate)

// Add accounts a dense session load in (bootstrap path).
func (sl *Ledger) Add(load *cost.SessionLoad) {
	sl.lockAll()
	sl.inner.Add(load)
	sl.bumpAll()
	sl.unlockAll()
}

// Remove accounts a dense session load out.
func (sl *Ledger) Remove(load *cost.SessionLoad) {
	sl.lockAll()
	sl.inner.Remove(load)
	sl.bumpAll()
	sl.unlockAll()
}

// AddSparse accounts a sparse session load in, bumping only the shards it
// touches.
func (sl *Ledger) AddSparse(load *cost.SparseLoad) {
	var r Route
	r.reset(len(sl.shards))
	sl.route(&r, load, nil)
	sl.lockRoute(&r)
	for _, si := range r.list {
		sl.inner.AddSparseRange(load, int(sl.bounds[si]), int(sl.bounds[si+1]))
		sl.shards[si].epoch++
	}
	sl.unlockRoute(&r)
}

// RemoveSparse accounts a sparse session load out (departure path).
func (sl *Ledger) RemoveSparse(load *cost.SparseLoad) {
	var r Route
	r.reset(len(sl.shards))
	sl.route(&r, load, nil)
	sl.lockRoute(&r)
	for _, si := range r.list {
		sl.inner.RemoveSparseRange(load, int(sl.bounds[si]), int(sl.bounds[si+1]))
		sl.shards[si].epoch++
	}
	sl.unlockRoute(&r)
}

// Fits reports whether the ledger plus the candidate respects every
// capacity (nil checks the ledger alone).
func (sl *Ledger) Fits(candidate *cost.SessionLoad) bool {
	sl.lockAll()
	defer sl.unlockAll()
	return sl.inner.Fits(candidate)
}

// TryAdd atomically checks Fits(load) and accounts the load on success:
// every stripe lock is held across check and add, so a concurrent
// CommitDelta cannot interleave between them — the admission primitive
// that keeps pipelined-mode bootstraps from overshooting capacity.
func (sl *Ledger) TryAdd(load *cost.SessionLoad) bool {
	sl.lockAll()
	defer sl.unlockAll()
	if !sl.inner.Fits(load) {
		return false
	}
	sl.inner.Add(load)
	sl.bumpAll()
	return true
}

// FitsRepair is the dense repair-semantics check.
func (sl *Ledger) FitsRepair(candidate, current *cost.SessionLoad) bool {
	sl.lockAll()
	defer sl.unlockAll()
	return sl.inner.FitsRepair(candidate, current)
}

// FitsRepairDelta is the sparse repair-semantics check over the whole
// ledger. Concurrent committers use CommitDelta instead, which validates
// and applies atomically.
func (sl *Ledger) FitsRepairDelta(candidate, current *cost.SparseLoad) bool {
	sl.lockAll()
	defer sl.unlockAll()
	return sl.inner.FitsRepairDelta(candidate, current)
}

// FitsTouched is the strict capacity check over the candidate's touched
// agents.
func (sl *Ledger) FitsTouched(candidate *cost.SparseLoad) bool {
	sl.lockAll()
	defer sl.unlockAll()
	return sl.inner.FitsTouched(candidate)
}

// Violations lists agents over their (scaled) capacity.
func (sl *Ledger) Violations() []model.AgentID {
	sl.lockAll()
	defer sl.unlockAll()
	return sl.inner.Violations()
}

// Usage returns copies of the per-agent usage vectors.
func (sl *Ledger) Usage() (down, up []float64, tasks []int) {
	sl.lockAll()
	defer sl.unlockAll()
	return sl.inner.Usage()
}

// SetCapacityScale degrades (or restores) one agent's capacities.
func (sl *Ledger) SetCapacityScale(l model.AgentID, factor float64) error {
	if int(l) < 0 || int(l) >= len(sl.shardOf) {
		return fmt.Errorf("shard: unknown agent %d", l)
	}
	si := sl.shardOf[l]
	sl.shards[si].mu.Lock()
	defer sl.shards[si].mu.Unlock()
	err := sl.inner.SetCapacityScale(l, factor)
	if err == nil {
		sl.shards[si].epoch++
	}
	return err
}

// ---------------------------------------------------------------------------
// Concurrent commit pipeline

// route marks the shards the loads' touched agents fall in (b may be nil).
func (sl *Ledger) route(r *Route, a, b *cost.SparseLoad) {
	for _, l := range a.Touched() {
		r.add(sl.shardOf[l])
	}
	if b != nil {
		for _, l := range b.Touched() {
			r.add(sl.shardOf[l])
		}
	}
	r.sort()
}

func (sl *Ledger) lockRoute(r *Route) {
	for _, si := range r.list {
		sl.shards[si].mu.Lock()
	}
}

func (sl *Ledger) unlockRoute(r *Route) {
	for _, si := range r.list {
		sl.shards[si].mu.Unlock()
	}
}

// SnapshotInto copies the ledger's current state into the caller-owned
// dense ledger and returns the per-shard epochs observed while copying,
// appended to epochs (pass epochs[:0] to reuse the backing array; entry i
// is shard i's epoch). Each shard's range is copied under that shard's
// lock, so the snapshot is consistent per shard but may tear across shards
// under concurrent commits; CommitDelta's validation makes that safe, and
// the epochs let it tell a stale snapshot (Conflict) from a genuine
// capacity miss (Infeasible). Allocation-free once epochs has capacity P.
func (sl *Ledger) SnapshotInto(dst *cost.Ledger, epochs Epochs) Epochs {
	for i := range sl.shards {
		sh := &sl.shards[i]
		sh.mu.Lock()
		dst.CopyRangeFrom(sl.inner, int(sl.bounds[i]), int(sl.bounds[i+1]))
		epochs = append(epochs, sh.epoch)
		sh.mu.Unlock()
	}
	return epochs
}

// RouteAgents adds the shards covering the given agents to the route (call
// route.reset-equivalent ResetRoute first; Finish sorts). Proposal workers
// use it to describe the agent set their walk can read — current session
// agents plus every candidate-window agent — before a partial snapshot.
func (sl *Ledger) RouteAgents(r *Route, agents []model.AgentID) {
	if len(r.mark) != len(sl.shards) {
		r.reset(len(sl.shards))
	}
	for _, l := range agents {
		r.add(sl.shardOf[l])
	}
}

// ResetRoute clears a route for this ledger's shard count.
func (sl *Ledger) ResetRoute(r *Route) { r.reset(len(sl.shards)) }

// ExpandRoute widens the route by slack neighboring ID-range stripes on
// each side of every routed shard, then sorts it into canonical order. The
// pipelined event scheduler uses it as footprint slack: an event's walks
// may commit slightly outside the agents it routed from (footprint
// under-estimation is handled by the Conflict/retry path, but widening the
// claimed stripe set trades admission parallelism for fewer conflicts).
// slack ≤ 0 only sorts.
func (sl *Ledger) ExpandRoute(r *Route, slack int) {
	if slack > 0 {
		base := append([]int32(nil), r.list...)
		for _, si := range base {
			for d := int32(1); d <= int32(slack); d++ {
				if si-d >= 0 {
					r.add(si - d)
				}
				if int(si+d) < len(sl.shards) {
					r.add(si + d)
				}
			}
		}
	}
	r.sort()
}

// SnapshotRoute is SnapshotInto restricted to the routed shards: only
// their agent ranges are copied (under each shard's lock) and only their
// entries in the returned full-length epoch vector are meaningful. Ranges
// outside the route keep whatever dst held before — callers must ensure
// their walk reads only routed agents (the candidate-window discipline),
// which also guarantees a later CommitDelta routes within this set. Cuts
// per-proposal snapshot cost from O(fleet) to O(routed ranges) — the
// difference between a fleet-sized and a session-sized cost on large
// fleets. epochs is resized to P; pass the previous buffer to reuse it.
func (sl *Ledger) SnapshotRoute(dst *cost.Ledger, epochs Epochs, r *Route) Epochs {
	r.sort()
	if cap(epochs) < len(sl.shards) {
		epochs = make(Epochs, len(sl.shards))
	}
	epochs = epochs[:len(sl.shards)]
	for _, si := range r.list {
		sh := &sl.shards[si]
		sh.mu.Lock()
		dst.CopyRangeFrom(sl.inner, int(sl.bounds[si]), int(sl.bounds[si+1]))
		epochs[si] = sh.epoch
		sh.mu.Unlock()
	}
	return epochs
}

// CommitDelta atomically replaces a session's current load with the
// candidate: route both loads to their shards, lock those shards in
// canonical order, re-validate the per-shard FitsRepairDelta restriction
// against live usage, and apply (bumping routed epochs) or restore. snap
// must be the Epochs returned by the SnapshotInto the proposal was
// evaluated against; route is the caller's reusable routing buffer. The
// call is allocation-free at steady state.
//
// Commits whose routes do not intersect hold disjoint lock sets and
// therefore proceed fully in parallel.
func (sl *Ledger) CommitDelta(candidate, current *cost.SparseLoad, snap Epochs, route *Route) CommitResult {
	route.reset(len(sl.shards))
	sl.route(route, candidate, current)
	sl.lockRoute(route)

	stale := false
	for _, si := range route.list {
		if sl.shards[si].epoch != snap[si] {
			stale = true
			break
		}
	}

	// Same operation order as the single-lock path: withdraw the current
	// load, check repair feasibility of the replacement, then apply or
	// restore — restricted per shard, which is exact (see internal/cost).
	for _, si := range route.list {
		sl.inner.RemoveSparseRange(current, int(sl.bounds[si]), int(sl.bounds[si+1]))
	}
	ok := true
	for _, si := range route.list {
		if !sl.inner.FitsRepairDeltaRange(candidate, current, int(sl.bounds[si]), int(sl.bounds[si+1])) {
			ok = false
			break
		}
	}
	if ok {
		for _, si := range route.list {
			sl.inner.AddSparseRange(candidate, int(sl.bounds[si]), int(sl.bounds[si+1]))
			sl.shards[si].epoch++
		}
	} else {
		for _, si := range route.list {
			sl.inner.AddSparseRange(current, int(sl.bounds[si]), int(sl.bounds[si+1]))
		}
	}
	sl.unlockRoute(route)

	switch {
	case ok:
		sl.committed.Add(1)
		return Committed
	case stale:
		sl.conflicted.Add(1)
		return Conflict
	default:
		sl.infeasible.Add(1)
		return Infeasible
	}
}
