package shard

import (
	"math/rand"
	"sync"
	"testing"

	"vconf/internal/assign"
	"vconf/internal/baseline"
	"vconf/internal/cost"
	"vconf/internal/model"
	"vconf/internal/workload"
)

// TestShardCapacityScaleStorm degrades and restores agents mid-flight while
// ≥8 workers loop snapshot → mutate → commit: SetCapacityScale under one
// stripe lock must never race snapshot readers under other stripes' locks
// (the lazy scale-array allocation used to publish a slice header
// unsynchronized — run under -race in CI), and the final ledger must
// reconcile exactly against the sum of last-committed loads — no lost, torn
// or duplicated commit regardless of how scales flipped around it.
func TestShardCapacityScaleStorm(t *testing.T) {
	fc := workload.DefaultFleetConfig(5)
	fc.NumAgents = 16
	fc.NumUsers = 64
	fc.Regions = 4
	fc.AgentBandwidthMbps = 220
	fc.AgentTranscodeSlots = 24
	sc, err := workload.GenerateSyntheticFleet(fc)
	if err != nil {
		t.Fatal(err)
	}
	p := cost.DefaultParams()
	ev, err := cost.NewEvaluator(sc, p)
	if err != nil {
		t.Fatal(err)
	}
	a := assign.New(sc)
	admissionLedger := cost.NewLedger(sc)
	var admitted []model.SessionID
	for s := 0; s < sc.NumSessions(); s++ {
		if err := baseline.AssignSessionNearest(a, model.SessionID(s), p, admissionLedger); err == nil {
			admitted = append(admitted, model.SessionID(s))
		}
	}

	for _, shards := range []int{1, 4, 16} {
		sl := New(sc, shards)
		scr := ev.NewScratch()
		workers := len(admitted)
		if workers < 8 {
			t.Fatalf("fleet admitted %d sessions, need ≥8 conflicting workers", workers)
		}
		initial := make([]*cost.SparseLoad, workers)
		for i, s := range admitted {
			initial[i] = cost.NewSparseLoad(sc.NumAgents())
			initial[i].CopyFrom(ev.SessionLoadSparse(a, s, scr))
			sl.AddSparse(initial[i])
		}

		// The chaos goroutine flips a band of agents between failed (0),
		// degraded (0.5) and healthy (1) until the committers finish.
		done := make(chan struct{})
		var chaosWG sync.WaitGroup
		chaosWG.Add(1)
		go func() {
			defer chaosWG.Done()
			rng := rand.New(rand.NewSource(999))
			scales := []float64{0, 0.5, 1}
			for {
				select {
				case <-done:
					return
				default:
				}
				agent := model.AgentID(rng.Intn(6))
				if err := sl.SetCapacityScale(agent, scales[rng.Intn(len(scales))]); err != nil {
					t.Error(err)
					return
				}
			}
		}()

		final := make([]*cost.SparseLoad, workers)
		var commits [64]int
		var wg sync.WaitGroup
		for wkr := 0; wkr < workers; wkr++ {
			wg.Add(1)
			go func(wkr int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(2000 + wkr)))
				snap := cost.NewLedger(sc)
				var epochs Epochs
				var route Route
				cur := initial[wkr]
				for iter := 0; iter < 200; iter++ {
					epochs = sl.SnapshotInto(snap, epochs[:0])
					cand := mutateLoad(sc, cur, rng)
					if sl.CommitDelta(cand, cur, epochs, &route) == Committed {
						cur = cand
						commits[wkr]++
					}
				}
				final[wkr] = cur
			}(wkr)
		}
		wg.Wait()
		close(done)
		chaosWG.Wait()

		// Exact reconciliation: usage must equal the sum of every worker's
		// last-committed load, independent of the scale flips interleaved
		// with the commits. Tasks are integers (exact); bandwidth was
		// accumulated in commit order, so allow float slack.
		want := cost.NewLedger(sc)
		for _, load := range final {
			want.AddSparse(load)
		}
		gotDown, gotUp, gotTasks := sl.Usage()
		wantDown, wantUp, wantTasks := want.Usage()
		const eps = 1e-6
		for l := 0; l < sc.NumAgents(); l++ {
			if gotTasks[l] != wantTasks[l] {
				t.Fatalf("shards=%d: agent %d tasks %d, want %d (lost/duplicated commit)",
					shards, l, gotTasks[l], wantTasks[l])
			}
			if d := gotDown[l] - wantDown[l]; d > eps || d < -eps {
				t.Fatalf("shards=%d: agent %d download %v, want %v", shards, l, gotDown[l], wantDown[l])
			}
			if d := gotUp[l] - wantUp[l]; d > eps || d < -eps {
				t.Fatalf("shards=%d: agent %d upload %v, want %v", shards, l, gotUp[l], wantUp[l])
			}
		}
		totalCommits := 0
		for w := 0; w < workers; w++ {
			totalCommits += commits[w]
		}
		if totalCommits == 0 {
			t.Fatalf("shards=%d: storm committed nothing", shards)
		}

		// Post-storm determinism: a zero scale must gate the commit path.
		for l := 0; l < sc.NumAgents(); l++ {
			if err := sl.SetCapacityScale(model.AgentID(l), 1); err != nil {
				t.Fatal(err)
			}
		}
		if err := sl.SetCapacityScale(0, 0); err != nil {
			t.Fatal(err)
		}
		var epochs Epochs
		var route Route
		snap := cost.NewLedger(sc)
		epochs = sl.SnapshotInto(snap, epochs[:0])
		probe := cost.NewSparseLoad(sc.NumAgents())
		dense := final[0].Dense()
		dense.Down[0] += 5
		dense.Up[0] += 5
		dense.Tasks[0]++
		probe.CopyFrom(cost.NewSparseLoadFromDense(dense))
		if res := sl.CommitDelta(probe, final[0], epochs, &route); res != Infeasible {
			t.Fatalf("shards=%d: commit onto a zero-scaled agent returned %v, want Infeasible", shards, res)
		}
		t.Logf("shards=%d: %d workers, %d commits under scale churn", shards, workers, totalCommits)
	}
}
