package shard

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"vconf/internal/assign"
	"vconf/internal/baseline"
	"vconf/internal/cost"
	"vconf/internal/model"
	"vconf/internal/workload"
)

// fixture builds a bootstrapped fleet scenario with per-session sparse
// loads ready for commit traffic.
func fixture(t testing.TB, agents, users int, seed int64) (*model.Scenario, *cost.Evaluator, []*cost.SparseLoad) {
	t.Helper()
	fc := workload.DefaultFleetConfig(seed)
	fc.NumAgents = agents
	fc.NumUsers = users
	sc, err := workload.GenerateSyntheticFleet(fc)
	if err != nil {
		t.Fatal(err)
	}
	p := cost.DefaultParams()
	ev, err := cost.NewEvaluator(sc, p)
	if err != nil {
		t.Fatal(err)
	}
	a := assign.New(sc)
	if err := baseline.Assign(a, p, cost.NewLedger(sc)); err != nil {
		t.Fatal(err)
	}
	scr := ev.NewScratch()
	loads := make([]*cost.SparseLoad, sc.NumSessions())
	for s := range loads {
		loads[s] = cost.NewSparseLoad(sc.NumAgents())
		loads[s].CopyFrom(ev.SessionLoadSparse(a, model.SessionID(s), scr))
	}
	return sc, ev, loads
}

// mutateLoad derives a perturbed copy of a load: same touched agents plus a
// few random ones, with jittered magnitudes — commit traffic that overlaps
// the original's shards and usually some others.
func mutateLoad(sc *model.Scenario, src *cost.SparseLoad, rng *rand.Rand) *cost.SparseLoad {
	dense := src.Dense()
	l := model.AgentID(rng.Intn(sc.NumAgents()))
	dense.Down[l] += 2 + 10*rng.Float64()
	dense.Up[l] += 2 + 10*rng.Float64()
	dense.Tasks[l]++
	out := cost.NewSparseLoad(sc.NumAgents())
	out.CopyFrom(sparseFromDense(sc, dense))
	return out
}

// sparseFromDense converts a dense load back to sparse form (test helper).
func sparseFromDense(sc *model.Scenario, d *cost.SessionLoad) *cost.SparseLoad {
	// Round-trip through an evaluator-independent path: accumulate into a
	// ledger-compatible sparse load via public APIs.
	out := cost.NewSparseLoadFromDense(d)
	_ = sc
	return out
}

// TestShardedMatchesDenseSequential replays one random operation sequence
// through the dense ledger and through sharded ledgers at several stripe
// counts: every usage vector and every feasibility answer must be
// bit-identical — the exactness contract all shard counts share.
func TestShardedMatchesDenseSequential(t *testing.T) {
	sc, _, loads := fixture(t, 50, 40, 1)
	dense := cost.NewLedger(sc)
	shardCounts := []int{1, 3, 8, 50, 200}
	sharded := make([]*Ledger, len(shardCounts))
	for i, p := range shardCounts {
		sharded[i] = New(sc, p)
	}
	all := func(f func(g cost.LedgerAPI)) {
		f(dense)
		for _, sl := range sharded {
			f(sl)
		}
	}

	rng := rand.New(rand.NewSource(7))
	cur := make([]*cost.SparseLoad, len(loads))
	for s, load := range loads {
		all(func(g cost.LedgerAPI) { g.AddSparse(load) })
		cur[s] = load
	}
	for step := 0; step < 300; step++ {
		s := rng.Intn(len(loads))
		cand := mutateLoad(sc, cur[s], rng)
		// Degrade a random agent occasionally so repair semantics get hit.
		if step%37 == 0 {
			l := model.AgentID(rng.Intn(sc.NumAgents()))
			all(func(g cost.LedgerAPI) {
				if err := g.SetCapacityScale(l, 0.5); err != nil {
					t.Fatal(err)
				}
			})
		}
		wantFits := dense.FitsRepairDelta(cand, cur[s])
		for i, sl := range sharded {
			if got := sl.FitsRepairDelta(cand, cur[s]); got != wantFits {
				t.Fatalf("step %d: %d-shard FitsRepairDelta = %v, dense = %v", step, shardCounts[i], got, wantFits)
			}
		}
		// Dense path applies the same swap sequence the pipeline would.
		dense.RemoveSparse(cur[s])
		if wantFits {
			dense.AddSparse(cand)
		} else {
			dense.AddSparse(cur[s])
		}
		for i, sl := range sharded {
			var r Route
			snap := sl.SnapshotInto(cost.NewLedger(sc), nil)
			res := sl.CommitDelta(cand, cur[s], snap, &r)
			if wantFits != (res == Committed) {
				t.Fatalf("step %d: %d-shard commit = %v, dense fits = %v", step, shardCounts[i], res, wantFits)
			}
			if !wantFits && res != Infeasible {
				t.Fatalf("step %d: sequential rejection classified %v, want infeasible", step, res)
			}
		}
		if wantFits {
			cur[s] = cand
		}

		wantDown, wantUp, wantTasks := dense.Usage()
		for i, sl := range sharded {
			gotDown, gotUp, gotTasks := sl.Usage()
			for l := range wantDown {
				if gotDown[l] != wantDown[l] || gotUp[l] != wantUp[l] || gotTasks[l] != wantTasks[l] {
					t.Fatalf("step %d: %d-shard usage diverged at agent %d: (%v %v %d) != (%v %v %d)",
						step, shardCounts[i], l,
						gotDown[l], gotUp[l], gotTasks[l], wantDown[l], wantUp[l], wantTasks[l])
				}
			}
		}
	}
	// Violations agree too (degradations above made some agents overfull).
	want := dense.Violations()
	for i, sl := range sharded {
		got := sl.Violations()
		if len(got) != len(want) {
			t.Fatalf("%d-shard violations %v, dense %v", shardCounts[i], got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("%d-shard violations %v, dense %v", shardCounts[i], got, want)
			}
		}
	}
}

// TestShardRouting pins the deterministic ID-range partition and routing.
func TestShardRouting(t *testing.T) {
	sc, _, loads := fixture(t, 10, 12, 2)
	sl := New(sc, 4)
	if sl.NumShards() != 4 {
		t.Fatalf("NumShards = %d", sl.NumShards())
	}
	// Ranges are contiguous, cover [0, L), and balanced within one agent.
	covered := 0
	for i := 0; i < sl.NumShards(); i++ {
		lo, hi := sl.Bounds(i)
		if lo != covered {
			t.Fatalf("shard %d starts at %d, want %d", i, lo, covered)
		}
		if n := hi - lo; n < 2 || n > 3 {
			t.Fatalf("shard %d holds %d agents, want 2 or 3", i, n)
		}
		for a := lo; a < hi; a++ {
			if sl.ShardOf(model.AgentID(a)) != i {
				t.Fatalf("agent %d routed to shard %d, want %d", a, sl.ShardOf(model.AgentID(a)), i)
			}
		}
		covered = hi
	}
	if covered != sc.NumAgents() {
		t.Fatalf("shards cover %d agents, want %d", covered, sc.NumAgents())
	}
	// Clamping: more shards than agents degrades to one agent per shard.
	if got := New(sc, 99).NumShards(); got != sc.NumAgents() {
		t.Fatalf("overprovisioned shard count %d, want %d", got, sc.NumAgents())
	}
	if got := New(sc, 0).NumShards(); got != 1 {
		t.Fatalf("zero shard count %d, want 1", got)
	}
	_ = loads
}

// TestShardConcurrentCommitStorm drives ≥8 workers through same-shard and
// cross-shard conflict storms under -race: every worker loops
// snapshot → mutate → commit on its own session against finite capacities,
// and the invariant checker requires that final usage equals exactly the
// sum of each session's last-committed load (no lost, duplicated, or torn
// commit) and that no capacity is overshot.
func TestShardConcurrentCommitStorm(t *testing.T) {
	fc := workload.DefaultFleetConfig(3)
	fc.NumAgents = 16 // few agents × many workers ⇒ dense shard overlap
	fc.NumUsers = 64
	fc.Regions = 4 // regional mode: finite skewed capacities ⇒ real rejects
	fc.AgentBandwidthMbps = 220
	fc.AgentTranscodeSlots = 24
	sc, err := workload.GenerateSyntheticFleet(fc)
	if err != nil {
		t.Fatal(err)
	}
	p := cost.DefaultParams()
	ev, err := cost.NewEvaluator(sc, p)
	if err != nil {
		t.Fatal(err)
	}
	// Best-effort admission: Nrst is resource-oblivious and the regional
	// capacities are tight, so some sessions may not fit — storm over the
	// admitted ones.
	a := assign.New(sc)
	admissionLedger := cost.NewLedger(sc)
	var admitted []model.SessionID
	for s := 0; s < sc.NumSessions(); s++ {
		if err := baseline.AssignSessionNearest(a, model.SessionID(s), p, admissionLedger); err == nil {
			admitted = append(admitted, model.SessionID(s))
		}
	}

	for _, shards := range []int{1, 4, 16} {
		sl := New(sc, shards)
		scr := ev.NewScratch()
		workers := len(admitted)
		if workers < 8 {
			t.Fatalf("fleet admitted %d sessions, need ≥8 conflicting workers", workers)
		}
		// Account every admitted session, then let each worker churn its
		// own load.
		initial := make([]*cost.SparseLoad, workers)
		for i, s := range admitted {
			initial[i] = cost.NewSparseLoad(sc.NumAgents())
			initial[i].CopyFrom(ev.SessionLoadSparse(a, s, scr))
			sl.AddSparse(initial[i])
		}

		final := make([]*cost.SparseLoad, workers)
		var commits, conflicts, infeasible [64]int
		var wg sync.WaitGroup
		for wkr := 0; wkr < workers; wkr++ {
			wg.Add(1)
			go func(wkr int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(1000 + wkr)))
				snap := cost.NewLedger(sc)
				var epochs Epochs
				var route Route
				cur := initial[wkr]
				for iter := 0; iter < 200; iter++ {
					epochs = sl.SnapshotInto(snap, epochs[:0])
					cand := mutateLoad(sc, cur, rng)
					switch sl.CommitDelta(cand, cur, epochs, &route) {
					case Committed:
						cur = cand
						commits[wkr]++
					case Conflict:
						conflicts[wkr]++
					case Infeasible:
						infeasible[wkr]++
					}
				}
				final[wkr] = cur
			}(wkr)
		}
		wg.Wait()

		// Invariant 1: no session lost or duplicated — usage is exactly the
		// sum of the last-committed loads. Tasks are integers (exact); the
		// bandwidth components were accumulated in commit order, so allow
		// float-accumulation slack.
		want := cost.NewLedger(sc)
		for _, load := range final {
			want.AddSparse(load)
		}
		gotDown, gotUp, gotTasks := sl.Usage()
		wantDown, wantUp, wantTasks := want.Usage()
		const eps = 1e-6
		for l := 0; l < sc.NumAgents(); l++ {
			if gotTasks[l] != wantTasks[l] {
				t.Fatalf("shards=%d: agent %d tasks %d, want %d (lost/duplicated commit)",
					shards, l, gotTasks[l], wantTasks[l])
			}
			if d := gotDown[l] - wantDown[l]; d > eps || d < -eps {
				t.Fatalf("shards=%d: agent %d download %v, want %v", shards, l, gotDown[l], wantDown[l])
			}
			if d := gotUp[l] - wantUp[l]; d > eps || d < -eps {
				t.Fatalf("shards=%d: agent %d upload %v, want %v", shards, l, gotUp[l], wantUp[l])
			}
		}
		totalCommits, totalConflicts := 0, 0
		for w := 0; w < workers; w++ {
			totalCommits += commits[w]
			totalConflicts += conflicts[w]
		}
		if totalCommits == 0 {
			t.Fatalf("shards=%d: storm committed nothing", shards)
		}
		t.Logf("shards=%d: %d workers, %d commits, %d conflicts", shards, workers, totalCommits, totalConflicts)
	}
}

// TestShardCommitHotPathAllocs pins the commit hot path
// (snapshot → route → commit) to zero allocations at steady state.
func TestShardCommitHotPathAllocs(t *testing.T) {
	sc, ev, loads := fixture(t, 64, 40, 4)
	sl := New(sc, 8)
	for _, load := range loads {
		sl.AddSparse(load)
	}
	snap := cost.NewLedger(sc)
	var epochs Epochs
	var route Route
	cur := loads[0]
	_ = ev
	res := testing.Benchmark(func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			epochs = sl.SnapshotInto(snap, epochs[:0])
			if r := sl.CommitDelta(cur, cur, epochs, &route); r != Committed {
				b.Fatalf("commit = %v", r)
			}
		}
	})
	if allocs := res.AllocsPerOp(); allocs != 0 {
		t.Errorf("shard commit hot path allocates %d allocs/op, want 0", allocs)
	}
}

// BenchmarkShardCommit measures the commit pipeline alone: route + stripe
// locks + per-shard validation + apply, on a 100-agent fleet.
// "serial" is one committer; "contended" hammers the pipeline from
// GOMAXPROCS goroutines committing different sessions — the case stripe
// locking exists for.
func BenchmarkShardCommit(b *testing.B) {
	for _, shards := range []int{1, 8} {
		sc, ev, loads := fixture(b, 100, 60, 5)
		_ = ev
		sl := New(sc, shards)
		for _, load := range loads {
			sl.AddSparse(load)
		}
		name := map[int]string{1: "serial/shards=1", 8: "serial/shards=8"}[shards]
		b.Run(name, func(b *testing.B) {
			snap := cost.NewLedger(sc)
			var epochs Epochs
			var route Route
			cur := loads[0]
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				epochs = sl.SnapshotInto(snap, epochs[:0])
				if r := sl.CommitDelta(cur, cur, epochs, &route); r != Committed {
					b.Fatalf("commit = %v", r)
				}
			}
		})
	}
	for _, shards := range []int{1, 8} {
		sc, ev, loads := fixture(b, 100, 60, 6)
		_ = ev
		sl := New(sc, shards)
		for _, load := range loads {
			sl.AddSparse(load)
		}
		b.Run(map[int]string{1: "contended/shards=1", 8: "contended/shards=8"}[shards], func(b *testing.B) {
			var next atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				// Each goroutine commits a different session's load in
				// place: mostly-disjoint routes under high stripe pressure.
				cur := loads[int(next.Add(1))%len(loads)]
				snap := cost.NewLedger(sc)
				var epochs Epochs
				var route Route
				for pb.Next() {
					epochs = sl.SnapshotInto(snap, epochs[:0])
					if r := sl.CommitDelta(cur, cur, epochs, &route); r != Committed {
						b.Fatalf("commit = %v", r)
					}
				}
			})
		})
	}
}

// tryAddFixture builds a finite-capacity scenario plus a fabricated dense
// load sized so each agent absorbs only a few copies — the admission shape
// TryAdd exists for.
func tryAddFixture(t testing.TB) (*model.Scenario, *cost.SessionLoad) {
	t.Helper()
	wl := workload.Prototype(17)
	wl.MeanBandwidthMbps = 100 // per-agent caps land in [70, 130]
	wl.MeanTranscodeSlots = 40
	sc, err := workload.Generate(wl)
	if err != nil {
		t.Fatal(err)
	}
	L := sc.NumAgents()
	load := &cost.SessionLoad{
		Down:  make([]float64, L),
		Up:    make([]float64, L),
		Tasks: make([]int, L),
		Inter: make([]float64, L),
	}
	for l := 0; l < L; l++ {
		load.Down[l] = 30
		load.Up[l] = 30
		load.Tasks[l] = 1
	}
	return sc, load
}

// TestShardTryAddMatchesDense pins TryAdd semantics against the dense
// reference: copy-for-copy identical admission decisions, identical usage,
// and a refused TryAdd leaves the ledger untouched.
func TestShardTryAddMatchesDense(t *testing.T) {
	sc, load := tryAddFixture(t)
	for _, shards := range []int{1, 4} {
		dense := cost.NewLedger(sc)
		sl := New(sc, shards)
		admitted := 0
		for i := 0; i < 16; i++ {
			okD := dense.TryAdd(load)
			okS := sl.TryAdd(load)
			if okD != okS {
				t.Fatalf("shards=%d copy %d: dense %v, sharded %v", shards, i, okD, okS)
			}
			if okD {
				admitted++
			}
		}
		if admitted == 0 || admitted == 16 {
			t.Fatalf("shards=%d fixture never gated: admitted %d/16", shards, admitted)
		}
		dDown, dUp, dTasks := dense.Usage()
		sDown, sUp, sTasks := sl.Usage()
		for l := 0; l < sc.NumAgents(); l++ {
			if dDown[l] != sDown[l] || dUp[l] != sUp[l] || dTasks[l] != sTasks[l] {
				t.Fatalf("shards=%d agent %d usage diverged after refusals", shards, l)
			}
		}
		if !sl.Fits(nil) {
			t.Fatalf("shards=%d TryAdd overshot capacity: %v", shards, sl.Violations())
		}
	}
}

// TestShardTryAddAtomicStorm hammers TryAdd/Remove from many goroutines:
// because the check and the add share one critical section, the ledger must
// be capacity-feasible at every instant — concurrent committers and
// admissions can never interleave into an overshoot. Run under -race in CI.
func TestShardTryAddAtomicStorm(t *testing.T) {
	sc, load := tryAddFixture(t)
	sl := New(sc, 5)
	const workers = 12
	const iters = 300
	var wg sync.WaitGroup
	fail := atomic.Bool{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if sl.TryAdd(load) {
					// A successful admission can never leave the ledger
					// infeasible, and later TryAdds only admit what fits, so
					// feasibility must hold at every observation point.
					if !sl.Fits(nil) {
						fail.Store(true)
						return
					}
					sl.Remove(load)
				}
			}
		}()
	}
	wg.Wait()
	if fail.Load() {
		t.Fatalf("TryAdd admitted past capacity under contention: %v", sl.Violations())
	}
	if !sl.Fits(nil) {
		t.Fatal("storm left the ledger infeasible")
	}
	down, up, tasks := sl.Usage()
	for l := range down {
		if down[l] != 0 || up[l] != 0 || tasks[l] != 0 {
			t.Fatalf("storm leaked usage at agent %d: %v/%v/%d", l, down[l], up[l], tasks[l])
		}
	}
}
