package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{7}, 7},
		{"several", []float64{1, 2, 3, 4}, 2.5},
		{"negative", []float64{-2, 2}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.in); got != tt.want {
				t.Fatalf("Mean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev(nil); got != 0 {
		t.Fatalf("StdDev(nil) = %v", got)
	}
	if got := StdDev([]float64{5}); got != 0 {
		t.Fatalf("StdDev(one) = %v", got)
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5} // unsorted on purpose
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-1, 1}, {2, 5},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); math.Abs(got-tt.want) > 1e-9 {
			t.Fatalf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.5); math.Abs(got-5) > 1e-9 {
		t.Fatalf("interpolated median = %v, want 5", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("Quantile(empty) = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	b := Summarize([]float64{1, 2, 3, 4, 5})
	if b.Min != 1 || b.Median != 3 || b.Max != 5 {
		t.Fatalf("Summarize = %+v", b)
	}
	if b.Q1 != 2 || b.Q3 != 4 {
		t.Fatalf("quartiles = %v, %v", b.Q1, b.Q3)
	}
	if s := b.String(); s != "1.0/2.0/3.0/4.0/5.0" {
		t.Fatalf("String = %q", s)
	}
	if got := Summarize(nil); got != (BoxPlot{}) {
		t.Fatalf("Summarize(nil) = %+v", got)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	prop := func(raw []float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return Quantile(xs, 0) <= Quantile(xs, 1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
