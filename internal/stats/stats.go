// Package stats provides the small statistical summaries the experiment
// harness reports: means, quantiles and five-number box-plot summaries
// (Fig. 8 of the paper is a box plot).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation, or 0 for fewer than two
// samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	acc := 0.0
	for _, x := range xs {
		d := x - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(len(xs)))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear interpolation
// between order statistics. The input need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// BoxPlot is the five-number summary a box-and-whisker plot renders.
type BoxPlot struct {
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
}

// Summarize computes the five-number summary of xs.
func Summarize(xs []float64) BoxPlot {
	if len(xs) == 0 {
		return BoxPlot{}
	}
	return BoxPlot{
		Min:    Quantile(xs, 0),
		Q1:     Quantile(xs, 0.25),
		Median: Quantile(xs, 0.5),
		Q3:     Quantile(xs, 0.75),
		Max:    Quantile(xs, 1),
	}
}

// String renders the summary as "min/Q1/med/Q3/max".
func (b BoxPlot) String() string {
	return fmt.Sprintf("%.1f/%.1f/%.1f/%.1f/%.1f", b.Min, b.Q1, b.Median, b.Q3, b.Max)
}
