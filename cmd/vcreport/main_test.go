package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const benchA = `{
  "generated_by": "vcbench -run chaos",
  "schema_version": 1,
  "points": [
    {"name": "ChaosRecovery/none", "events_per_sec": 500, "reopt_p50_ms": 2.0, "reopt_p99_ms": 8.0, "recovery_p50_ms": 0, "recovery_p99_ms": 0},
    {"name": "ChaosRecovery/heavy", "events_per_sec": 300, "reopt_p50_ms": 3.0, "reopt_p99_ms": 12.0, "recovery_p50_ms": 5.0, "recovery_p99_ms": 20.0}
  ]
}`

func TestSelfCompareIsClean(t *testing.T) {
	dir := t.TempDir()
	p := write(t, dir, "a.json", benchA)
	var sb strings.Builder
	if err := run([]string{"-a", p, "-b", p}, &sb); err != nil {
		t.Fatalf("self-comparison failed: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "verdict: PASS") || !strings.Contains(sb.String(), "0 regressions") {
		t.Fatalf("unexpected verdict:\n%s", sb.String())
	}
}

func TestRegressionDetectedAndJudgedByDirection(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.json", benchA)
	// Candidate: heavy point throughput down 40% (regression), p50 down
	// 33% (improvement, lower-better), recovery p99 up 50% (regression).
	b := write(t, dir, "b.json", strings.NewReplacer(
		`"events_per_sec": 300`, `"events_per_sec": 180`,
		`"reopt_p50_ms": 3.0`, `"reopt_p50_ms": 2.0`,
		`"recovery_p99_ms": 20.0`, `"recovery_p99_ms": 30.0`,
	).Replace(benchA))
	var sb strings.Builder
	err := run([]string{"-a", a, "-b", b, "-tol", "0.10"}, &sb)
	if err == nil {
		t.Fatalf("regressions not surfaced as an error:\n%s", sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "verdict: FAIL") || !strings.Contains(out, "2 regressions") || !strings.Contains(out, "1 improvements") {
		t.Fatalf("unexpected verdict:\n%s", out)
	}
	if !strings.Contains(out, "REGRESS  points/ChaosRecovery/heavy/events_per_sec") {
		t.Fatalf("throughput regression not flagged:\n%s", out)
	}

	// The same files inside a generous tolerance pass.
	sb.Reset()
	if err := run([]string{"-a", a, "-b", b, "-tol", "0.60"}, &sb); err != nil {
		t.Fatalf("within-tolerance comparison failed: %v\n%s", err, sb.String())
	}
}

func TestZeroBaselineIsNotedNotJudged(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.json", benchA)
	b := write(t, dir, "b.json", strings.Replace(benchA, `"recovery_p50_ms": 0,`, `"recovery_p50_ms": 1.0,`, 1))
	var sb strings.Builder
	if err := run([]string{"-a", a, "-b", b}, &sb); err != nil {
		t.Fatalf("zero-baseline movement judged as regression: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "zero baseline") {
		t.Fatalf("zero-baseline movement not noted:\n%s", sb.String())
	}
}

func TestSchemaVersionValidation(t *testing.T) {
	dir := t.TempDir()
	good := write(t, dir, "good.json", benchA)

	// Mismatched version: rejected loudly.
	bad := write(t, dir, "bad.json", strings.Replace(benchA, `"schema_version": 1`, `"schema_version": 2`, 1))
	var sb strings.Builder
	err := run([]string{"-a", good, "-b", bad}, &sb)
	if err == nil || !strings.Contains(err.Error(), "schema_version") {
		t.Fatalf("schema mismatch not rejected: %v", err)
	}

	// Non-numeric version: rejected too.
	junk := write(t, dir, "junk.json", strings.Replace(benchA, `"schema_version": 1`, `"schema_version": "v1"`, 1))
	if err := run([]string{"-a", good, "-b", junk}, &sb); err == nil || !strings.Contains(err.Error(), "schema_version") {
		t.Fatalf("non-numeric schema not rejected: %v", err)
	}

	// Absent version: accepted legacy.
	legacy := write(t, dir, "legacy.json", strings.Replace(benchA, `  "schema_version": 1,`+"\n", "", 1))
	sb.Reset()
	if err := run([]string{"-a", legacy, "-b", legacy}, &sb); err != nil {
		t.Fatalf("legacy payload rejected: %v", err)
	}
}

func TestCommittedBaselineSelfCompare(t *testing.T) {
	// The repo's committed BENCH_7.json (a legacy payload without the
	// schema tag) must self-compare clean — the CI smoke contract.
	p := filepath.Join("..", "..", "BENCH_7.json")
	if _, err := os.Stat(p); err != nil {
		t.Skipf("no committed baseline: %v", err)
	}
	var sb strings.Builder
	if err := run([]string{"-a", p, "-b", p}, &sb); err != nil {
		t.Fatalf("BENCH_7.json self-comparison failed: %v\n%s", err, sb.String())
	}
}

func TestTraceAndSpanReports(t *testing.T) {
	dir := t.TempDir()
	trace := write(t, dir, "trace.jsonl", strings.Join([]string{
		`{"kind":"arrive","session":0,"admitted":true,"class":"interactive","delay_ms":40}`,
		`{"kind":"arrive","session":1,"admitted":true,"class":"interactive","delay_ms":60}`,
		`{"kind":"arrive","session":2,"admitted":true,"class":"broadcast","delay_ms":50}`,
		`{"kind":"depart","session":0,"admitted":true}`,
	}, "\n"))
	spans := write(t, dir, "spans.jsonl", strings.Join([]string{
		`{"seq":0,"id":1,"name":"event:arrive","cat":"event","track":0,"start_ns":100,"dur_ns":5000}`,
		`{"seq":1,"id":2,"parent":1,"name":"task","cat":"task","track":100,"start_ns":200,"dur_ns":4000}`,
		`{"seq":2,"id":3,"parent":2,"name":"walk","cat":"task","track":100,"start_ns":200,"dur_ns":3000}`,
	}, "\n"))

	var sb strings.Builder
	if err := run([]string{"-trace", trace, "-spans", spans}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"interactive", "broadcast", "fairness (Jain over class means):",
		"p50=   40.00ms", // interactive p50 (nearest-rank of [40, 60])
		"event:arrive", "walk",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	// Fairness of means {50, 50} is exactly 1.
	if !strings.Contains(out, "fairness (Jain over class means): 1.0000") {
		t.Fatalf("fairness != 1 for equal class means:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{}, &sb); err == nil {
		t.Fatal("no-op invocation accepted")
	}
	if err := run([]string{"-a", "x.json"}, &sb); err == nil {
		t.Fatal("-a without -b accepted")
	}
	if err := run([]string{"-a", "x.json", "-b", "y.json", "-tol", "-1"}, &sb); err == nil {
		t.Fatal("negative tolerance accepted")
	}
}

// tsFixture builds a small sampler-window document: windows-per-second 1,
// with a drop-heavy incident window in the middle.
const tsFixture = `{
  "interval_s": 1,
  "windows_total": 4,
  "windows": [
    {"index": 0, "start_s": 0, "end_s": 1, "events": 10, "commits": 8, "rejects": 0, "conflicts": 0,
     "arrivals": 8, "drops": 0, "orphans": 0, "evac_rejects": 0, "faults": 0,
     "commits_per_s": 8, "reject_ratio": 0, "conflict_ratio": 0, "drop_ratio": 0,
     "classes": [{"class": "interactive", "delay_n": 8, "delay_p99_us": 50000}]},
    {"index": 1, "start_s": 1, "end_s": 2, "events": 12, "commits": 9, "rejects": 1, "conflicts": 1,
     "arrivals": 10, "drops": 1, "orphans": 2, "evac_rejects": 1, "faults": 1,
     "incident": 3, "incident_kind": "region-outage",
     "commits_per_s": 9, "reject_ratio": 0.1, "conflict_ratio": 0.1, "drop_ratio": 0.1667,
     "classes": [{"class": "interactive", "delay_n": 9, "delay_p99_us": 90000}]},
    {"index": 2, "start_s": 2, "end_s": 3, "events": 6, "commits": 6, "rejects": 0, "conflicts": 0,
     "arrivals": 6, "drops": 0, "orphans": 0, "evac_rejects": 0, "faults": 0,
     "incident": 3, "incident_kind": "region-outage",
     "commits_per_s": 6, "reject_ratio": 0, "conflict_ratio": 0, "drop_ratio": 0,
     "classes": [{"class": "interactive", "delay_n": 6, "delay_p99_us": 60000}]},
    {"index": 3, "start_s": 3, "end_s": 4, "events": 8, "commits": 8, "rejects": 0, "conflicts": 0,
     "arrivals": 8, "drops": 0, "orphans": 0, "evac_rejects": 0, "faults": 0,
     "commits_per_s": 8, "reject_ratio": 0, "conflict_ratio": 0, "drop_ratio": 0,
     "classes": [{"class": "interactive", "delay_n": 8, "delay_p99_us": 55000}]}
  ]
}`

const alertsFixture = `{
  "interval_s": 1,
  "status": [
    {"rule": "availability", "firing": false, "fires": 1, "resolves": 1,
     "firing_s": 120, "firing_windows": 2, "max_fast_burn": 33.3}
  ],
  "events": [
    {"seq": 1, "rule": "availability", "state": "fire", "window": 1, "time_s": 1,
     "fast_burn": 33.3, "slow_burn": 12.0, "incident": 3, "incident_kind": "region-outage"},
    {"seq": 2, "rule": "availability", "state": "resolve", "window": 3, "time_s": 3,
     "fast_burn": 0, "slow_burn": 8.0}
  ]
}`

func TestTimeseriesAndAlertsReports(t *testing.T) {
	dir := t.TempDir()
	ts := write(t, dir, "ts.json", tsFixture)
	alerts := write(t, dir, "alerts.json", alertsFixture)
	var sb strings.Builder
	if err := run([]string{"-timeseries", ts, "-alerts", alerts}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"timeseries: 4 windows held (4 total, 1s each)",
		"incident 3 (region-outage) in window 1",
		"class interactive",
		"alerts: 2 transitions",
		"incident=3(region-outage)",
		"alert minutes 2.00",
		"total alert minutes: 2.00",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsSnapshotReport(t *testing.T) {
	dir := t.TempDir()
	metrics := write(t, dir, "metrics.json", `{
  "metrics": [
    {"name": "vconf_commits_total", "type": "counter", "value": 120},
    {"name": "vconf_events_total", "type": "counter", "labels": {"kind": "arrive"}, "value": 70},
    {"name": "vconf_events_total", "type": "counter", "labels": {"kind": "depart"}, "value": 50},
    {"name": "vconf_reopt_latency_ns", "type": "histogram", "count": 120, "sum": 6e6, "p50": 40000, "p99": 90000}
  ]
}`)
	var sb strings.Builder
	if err := run([]string{"-metrics", metrics}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"metrics: 4 instruments in snapshot",
		"vconf_reopt_latency_ns",
		"p50=40000",
		"total=120",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}

	empty := write(t, dir, "empty.json", `{"metrics": []}`)
	if err := run([]string{"-metrics", empty}, &sb); err == nil {
		t.Fatal("empty metrics snapshot accepted")
	}
}

func TestHealthABVerdict(t *testing.T) {
	dir := t.TempDir()
	tsA := write(t, dir, "tsA.json", tsFixture)
	alertsA := write(t, dir, "alertsA.json", alertsFixture)

	// Self-comparison is clean.
	var sb strings.Builder
	if err := run([]string{"-tsa", tsA, "-tsb", tsA, "-alerts-a", alertsA, "-alerts-b", alertsA}, &sb); err != nil {
		t.Fatalf("health self-comparison failed: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "health verdict: PASS") {
		t.Fatalf("unexpected verdict:\n%s", sb.String())
	}

	// Candidate with more drops and double the alert minutes regresses.
	tsB := write(t, dir, "tsB.json", strings.NewReplacer(
		`"drops": 1`, `"drops": 4`,
		`"commits": 9`, `"commits": 2`,
	).Replace(tsFixture))
	alertsB := write(t, dir, "alertsB.json", strings.Replace(alertsFixture, `"firing_s": 120`, `"firing_s": 240`, 1))
	sb.Reset()
	err := run([]string{"-tsa", tsA, "-tsb", tsB, "-alerts-a", alertsA, "-alerts-b", alertsB, "-tol", "0.10"}, &sb)
	if err == nil {
		t.Fatalf("health regressions not surfaced as an error:\n%s", sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "health verdict: FAIL") {
		t.Fatalf("unexpected verdict:\n%s", out)
	}
	for _, want := range []string{"REGRESS  drop_ratio", "REGRESS  alert_minutes", "REGRESS  commits_per_s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("verdict missing %q:\n%s", want, out)
		}
	}
}

func TestHealthABUsageErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-tsa", "a.json"}, &sb); err == nil {
		t.Fatal("-tsa without -tsb accepted")
	}
	if err := run([]string{"-alerts-a", "a.json", "-alerts-b", "b.json"}, &sb); err == nil {
		t.Fatal("-alerts-a without -tsa/-tsb accepted")
	}
}
