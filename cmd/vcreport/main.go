// Command vcreport analyzes the observability artifacts the other tools
// emit: BENCH_<n>.json perf payloads (vcbench), decision-record JSONL
// traces and causal span JSONL (vcsim -trace-out / -span-out, or the
// /trace.jsonl and /spans.jsonl endpoints).
//
// Usage:
//
//	vcreport -a OLD.json -b NEW.json [-tol 0.10]   A/B regression verdict
//	vcreport -trace trace.jsonl                    per-class delay p50/p99 + fairness
//	vcreport -spans spans.jsonl                    per-phase time attribution
//
// Modes combine freely. The A/B comparison extracts every recognized
// metric leaf from both files (matched by benchmark/point name), applies
// the metric's direction — ns_per_op, ns_per_event, recovery_p50_ms,
// recovery_p99_ms, reopt_p50_ms and reopt_p99_ms are lower-better;
// events_per_sec is higher-better — and fails (exit 1) when any metric
// moved the wrong way by more than -tol relative. A BENCH file carrying a
// schema_version other than the supported one is rejected loudly; a file
// without the field predates the tag and is accepted as legacy.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"time"
)

// supportedBenchSchema must match cmd/vcbench's benchSchemaVersion.
const supportedBenchSchema = 1

// metricDir maps recognized metric leaves to their direction: +1 means
// higher is better, -1 means lower is better. Everything else in a BENCH
// payload is context, not a comparable.
var metricDir = map[string]int{
	"ns_per_op":       -1,
	"ns_per_event":    -1,
	"recovery_p50_ms": -1,
	"recovery_p99_ms": -1,
	"reopt_p50_ms":    -1,
	"reopt_p99_ms":    -1,
	"events_per_sec":  +1,
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vcreport:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("vcreport", flag.ContinueOnError)
	var (
		fileA   = fs.String("a", "", "A/B: baseline BENCH_<n>.json")
		fileB   = fs.String("b", "", "A/B: candidate BENCH_<n>.json")
		tol     = fs.Float64("tol", 0.10, "A/B: relative tolerance before a move counts as a regression/improvement")
		traceIn = fs.String("trace", "", "decision-record JSONL file (vcsim -trace-out or /trace.jsonl)")
		spansIn = fs.String("spans", "", "span JSONL file (vcsim -span-out or /spans.jsonl)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *fileA == "" && *fileB == "" && *traceIn == "" && *spansIn == "" {
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -a/-b, -trace, or -spans")
	}
	if (*fileA == "") != (*fileB == "") {
		return fmt.Errorf("A/B comparison needs both -a and -b")
	}
	if *tol < 0 {
		return fmt.Errorf("-tol %v negative", *tol)
	}

	if *spansIn != "" {
		if err := reportSpans(w, *spansIn); err != nil {
			return err
		}
	}
	if *traceIn != "" {
		if err := reportTrace(w, *traceIn); err != nil {
			return err
		}
	}
	if *fileA != "" {
		regressions, err := reportAB(w, *fileA, *fileB, *tol)
		if err != nil {
			return err
		}
		if regressions > 0 {
			return fmt.Errorf("%d metric(s) regressed beyond ±%.0f%%", regressions, *tol*100)
		}
	}
	return nil
}

// ---- A/B regression verdict ----------------------------------------------

// loadBench flattens one BENCH payload into name→value metric leaves,
// validating the schema tag first. Array entries ("benchmarks",
// "shard_sweep", "points") are keyed by their "name" field so reordering
// between runs cannot misalign the comparison.
func loadBench(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if v, ok := doc["schema_version"]; ok {
		ver, isNum := v.(float64)
		if !isNum || ver != supportedBenchSchema {
			return nil, fmt.Errorf("%s: schema_version %v unsupported (this vcreport reads version %d); regenerate the report with a matching vcbench",
				path, v, supportedBenchSchema)
		}
	} // absent: legacy payload from before the tag, accepted
	metrics := map[string]float64{}
	for _, section := range []string{"benchmarks", "shard_sweep", "points"} {
		arr, ok := doc[section].([]interface{})
		if !ok {
			continue
		}
		for i, entry := range arr {
			m, ok := entry.(map[string]interface{})
			if !ok {
				continue
			}
			key, _ := m["name"].(string)
			if key == "" {
				key = fmt.Sprintf("#%d", i)
			}
			for leaf, val := range m {
				if _, comparable := metricDir[leaf]; !comparable {
					continue
				}
				if f, isNum := val.(float64); isNum {
					metrics[section+"/"+key+"/"+leaf] = f
				}
			}
		}
	}
	if len(metrics) == 0 {
		return nil, fmt.Errorf("%s: no recognized metric leaves; not a vcbench payload?", path)
	}
	return metrics, nil
}

// reportAB compares every metric present in both files and returns the
// regression count.
func reportAB(w io.Writer, pathA, pathB string, tol float64) (int, error) {
	a, err := loadBench(pathA)
	if err != nil {
		return 0, err
	}
	b, err := loadBench(pathB)
	if err != nil {
		return 0, err
	}
	keys := make([]string, 0, len(a))
	for k := range a {
		if _, ok := b[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		return 0, fmt.Errorf("no shared metrics between %s and %s", pathA, pathB)
	}

	fmt.Fprintf(w, "A/B: %s → %s (tolerance ±%.0f%%)\n", pathA, pathB, tol*100)
	regressions, improvements := 0, 0
	for _, k := range keys {
		va, vb := a[k], b[k]
		dir := metricDir[leafOf(k)]
		var rel float64
		switch {
		case va == vb:
			rel = 0
		case va == 0:
			// Zero baseline (e.g. recovery percentiles of a fault-free
			// point): any movement is reported but never judged — a relative
			// tolerance has no meaning against 0.
			fmt.Fprintf(w, "  note     %-55s %12.4g → %-12.4g (zero baseline, not judged)\n", k, va, vb)
			continue
		default:
			rel = (vb - va) / va
		}
		worse := rel * float64(dir) // negative when b moved the wrong way
		switch {
		case worse < -tol:
			regressions++
			fmt.Fprintf(w, "  REGRESS  %-55s %12.4g → %-12.4g (%+.1f%%)\n", k, va, vb, rel*100)
		case worse > tol:
			improvements++
			fmt.Fprintf(w, "  improve  %-55s %12.4g → %-12.4g (%+.1f%%)\n", k, va, vb, rel*100)
		}
	}
	verdict := "PASS"
	if regressions > 0 {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "verdict: %s — %d metrics compared, %d regressions, %d improvements\n",
		verdict, len(keys), regressions, improvements)
	return regressions, nil
}

func leafOf(key string) string { return key[strings.LastIndex(key, "/")+1:] }

// ---- per-class delay + fairness from a decision trace --------------------

// traceRecord is the subset of telemetry.DecisionRecord vcreport reads.
type traceRecord struct {
	Kind     string  `json:"kind"`
	Session  int     `json:"session"`
	Admitted bool    `json:"admitted"`
	Class    string  `json:"class"`
	DelayMS  float64 `json:"delay_ms"`
}

func reportTrace(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	byClass := map[string][]float64{}
	records := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec traceRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return fmt.Errorf("%s:%d: %w", path, records+1, err)
		}
		records++
		if rec.DelayMS <= 0 {
			continue
		}
		class := rec.Class
		if class == "" {
			class = "default"
		}
		byClass[class] = append(byClass[class], rec.DelayMS)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(byClass) == 0 {
		fmt.Fprintf(w, "trace: %d records, none carrying a session delay\n", records)
		return nil
	}

	classes := make([]string, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	fmt.Fprintf(w, "trace: %d records, session delay by SLO class\n", records)
	var means []float64
	for _, c := range classes {
		d := byClass[c]
		sort.Float64s(d)
		mean := 0.0
		for _, v := range d {
			mean += v
		}
		mean /= float64(len(d))
		means = append(means, mean)
		fmt.Fprintf(w, "  %-12s n=%-5d mean=%8.2fms p50=%8.2fms p99=%8.2fms\n",
			c, len(d), mean, quantile(d, 0.50), quantile(d, 0.99))
	}
	fmt.Fprintf(w, "  fairness (Jain over class means): %.4f\n", jain(means))
	return nil
}

// quantile reads q from an ascending-sorted slice (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// jain is the fairness index (Σx)²/(n·Σx²) ∈ (0, 1].
func jain(xs []float64) float64 {
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if len(xs) == 0 || sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// ---- per-phase attribution from spans ------------------------------------

// spanRecord is the subset of telemetry.SpanRecord vcreport reads.
type spanRecord struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent"`
	Name   string `json:"name"`
	Cat    string `json:"cat"`
	DurNs  int64  `json:"dur_ns"`
}

func reportSpans(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	type agg struct {
		count int
		total int64
	}
	byName := map[string]*agg{}
	var names []string
	spans := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec spanRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return fmt.Errorf("%s:%d: %w", path, spans+1, err)
		}
		spans++
		a := byName[rec.Name]
		if a == nil {
			a = &agg{}
			byName[rec.Name] = a
			names = append(names, rec.Name)
		}
		a.count++
		a.total += rec.DurNs
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if spans == 0 {
		return fmt.Errorf("%s: no spans", path)
	}
	// Heaviest first. Parents contain their children, so this is
	// attribution per span family, not a partition of wall time.
	sort.Slice(names, func(i, j int) bool { return byName[names[i]].total > byName[names[j]].total })
	fmt.Fprintf(w, "spans: %d records, time attribution by phase\n", spans)
	for _, n := range names {
		a := byName[n]
		fmt.Fprintf(w, "  %-16s n=%-6d total=%12s mean=%10s\n",
			n, a.count, time.Duration(a.total).Round(time.Microsecond),
			(time.Duration(a.total) / time.Duration(a.count)).Round(time.Microsecond))
	}
	return nil
}
