// Command vcreport analyzes the observability artifacts the other tools
// emit: BENCH_<n>.json perf payloads (vcbench), decision-record JSONL
// traces, causal span JSONL, health sampler windows, SLO alert timelines
// and final metric snapshots (vcsim -trace-out / -span-out /
// -timeseries-out / -alerts-out / -metrics-out, or the corresponding
// exposition endpoints).
//
// Usage:
//
//	vcreport -a OLD.json -b NEW.json [-tol 0.10]   A/B regression verdict
//	vcreport -trace trace.jsonl                    per-class delay p50/p99 + fairness
//	vcreport -spans spans.jsonl                    per-phase time attribution
//	vcreport -timeseries ts.json                   windowed health summary
//	vcreport -alerts alerts.json                   SLO alert timeline + alert minutes
//	vcreport -metrics metrics.json                 final snapshot highlights
//	vcreport -tsa A.json -tsb B.json               A/B windowed-health verdict
//	         [-alerts-a A.json -alerts-b B.json]   ... with alert minutes
//	vcreport -trace-a A.jsonl -trace-b B.jsonl     sim-trace divergence (vcsim -record-trace)
//
// Modes combine freely. The A/B comparison extracts every recognized
// metric leaf from both files (matched by benchmark/point name), applies
// the metric's direction — ns_per_op, ns_per_event, recovery_p50_ms,
// recovery_p99_ms, reopt_p50_ms and reopt_p99_ms are lower-better;
// events_per_sec is higher-better — and fails (exit 1) when any metric
// moved the wrong way by more than -tol relative. A BENCH file carrying a
// schema_version other than the supported one is rejected loudly; a file
// without the field predates the tag and is accepted as legacy.
//
// The windowed-health A/B (-tsa/-tsb, optionally -alerts-a/-alerts-b)
// compares run-level health aggregates the same way: drop/reject/conflict
// ratios, unhealthy-window counts, per-class windowed p99 delay and alert
// minutes are lower-better, commit rate is higher-better; regressions
// beyond -tol fail the verdict (exit 1).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"vconf/internal/sim"
)

// supportedBenchSchema must match cmd/vcbench's benchSchemaVersion.
const supportedBenchSchema = 1

// metricDir maps recognized metric leaves to their direction: +1 means
// higher is better, -1 means lower is better. Everything else in a BENCH
// payload is context, not a comparable.
var metricDir = map[string]int{
	"ns_per_op":       -1,
	"ns_per_event":    -1,
	"recovery_p50_ms": -1,
	"recovery_p99_ms": -1,
	"reopt_p50_ms":    -1,
	"reopt_p99_ms":    -1,
	"events_per_sec":  +1,
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vcreport:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("vcreport", flag.ContinueOnError)
	var (
		fileA    = fs.String("a", "", "A/B: baseline BENCH_<n>.json")
		fileB    = fs.String("b", "", "A/B: candidate BENCH_<n>.json")
		tol      = fs.Float64("tol", 0.10, "A/B: relative tolerance before a move counts as a regression/improvement")
		traceIn  = fs.String("trace", "", "decision-record JSONL file (vcsim -trace-out or /trace.jsonl)")
		spansIn  = fs.String("spans", "", "span JSONL file (vcsim -span-out or /spans.jsonl)")
		tsIn     = fs.String("timeseries", "", "health sampler windows (vcsim -timeseries-out or /timeseries.json)")
		alertsIn = fs.String("alerts", "", "SLO alert timeline (vcsim -alerts-out or /alerts.json)")
		metrIn   = fs.String("metrics", "", "final metric snapshot (vcsim -metrics-out or /metrics.json)")
		tsA      = fs.String("tsa", "", "health A/B: baseline sampler windows")
		tsB      = fs.String("tsb", "", "health A/B: candidate sampler windows")
		alertsA  = fs.String("alerts-a", "", "health A/B: baseline alert timeline (optional, needs -tsa/-tsb)")
		alertsB  = fs.String("alerts-b", "", "health A/B: candidate alert timeline")
		simA     = fs.String("trace-a", "", "sim-trace divergence: baseline trace (vcsim -record-trace)")
		simB     = fs.String("trace-b", "", "sim-trace divergence: candidate trace")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *fileA == "" && *fileB == "" && *traceIn == "" && *spansIn == "" &&
		*tsIn == "" && *alertsIn == "" && *metrIn == "" && *tsA == "" && *tsB == "" &&
		*simA == "" && *simB == "" {
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -a/-b, -trace, -spans, -timeseries, -alerts, -metrics, -tsa/-tsb, or -trace-a/-trace-b")
	}
	if (*fileA == "") != (*fileB == "") {
		return fmt.Errorf("A/B comparison needs both -a and -b")
	}
	if (*tsA == "") != (*tsB == "") {
		return fmt.Errorf("health A/B comparison needs both -tsa and -tsb")
	}
	if (*simA == "") != (*simB == "") {
		return fmt.Errorf("sim-trace divergence needs both -trace-a and -trace-b")
	}
	if (*alertsA == "") != (*alertsB == "") {
		return fmt.Errorf("health A/B comparison needs both -alerts-a and -alerts-b")
	}
	if *alertsA != "" && *tsA == "" {
		return fmt.Errorf("-alerts-a/-alerts-b ride on -tsa/-tsb")
	}
	if *tol < 0 {
		return fmt.Errorf("-tol %v negative", *tol)
	}

	if *spansIn != "" {
		if err := reportSpans(w, *spansIn); err != nil {
			return err
		}
	}
	if *traceIn != "" {
		if err := reportTrace(w, *traceIn); err != nil {
			return err
		}
	}
	if *metrIn != "" {
		if err := reportMetrics(w, *metrIn); err != nil {
			return err
		}
	}
	if *tsIn != "" {
		if err := reportTimeseries(w, *tsIn); err != nil {
			return err
		}
	}
	if *alertsIn != "" {
		if err := reportAlerts(w, *alertsIn); err != nil {
			return err
		}
	}
	if *simA != "" {
		diverged, err := reportSimTraceAB(w, *simA, *simB)
		if err != nil {
			return err
		}
		if diverged {
			return fmt.Errorf("sim traces diverge")
		}
	}
	regressions := 0
	if *tsA != "" {
		n, err := reportHealthAB(w, *tsA, *tsB, *alertsA, *alertsB, *tol)
		if err != nil {
			return err
		}
		regressions += n
	}
	if *fileA != "" {
		n, err := reportAB(w, *fileA, *fileB, *tol)
		if err != nil {
			return err
		}
		regressions += n
	}
	if regressions > 0 {
		return fmt.Errorf("%d metric(s) regressed beyond ±%.0f%%", regressions, *tol*100)
	}
	return nil
}

// ---- A/B regression verdict ----------------------------------------------

// loadBench flattens one BENCH payload into name→value metric leaves,
// validating the schema tag first. Array entries ("benchmarks",
// "shard_sweep", "points") are keyed by their "name" field so reordering
// between runs cannot misalign the comparison.
func loadBench(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if v, ok := doc["schema_version"]; ok {
		ver, isNum := v.(float64)
		if !isNum || ver != supportedBenchSchema {
			return nil, fmt.Errorf("%s: schema_version %v unsupported (this vcreport reads version %d); regenerate the report with a matching vcbench",
				path, v, supportedBenchSchema)
		}
	} // absent: legacy payload from before the tag, accepted
	metrics := map[string]float64{}
	for _, section := range []string{"benchmarks", "shard_sweep", "points"} {
		arr, ok := doc[section].([]interface{})
		if !ok {
			continue
		}
		for i, entry := range arr {
			m, ok := entry.(map[string]interface{})
			if !ok {
				continue
			}
			key, _ := m["name"].(string)
			if key == "" {
				key = fmt.Sprintf("#%d", i)
			}
			for leaf, val := range m {
				if _, comparable := metricDir[leaf]; !comparable {
					continue
				}
				if f, isNum := val.(float64); isNum {
					metrics[section+"/"+key+"/"+leaf] = f
				}
			}
		}
	}
	if len(metrics) == 0 {
		return nil, fmt.Errorf("%s: no recognized metric leaves; not a vcbench payload?", path)
	}
	return metrics, nil
}

// reportAB compares every metric present in both files and returns the
// regression count.
func reportAB(w io.Writer, pathA, pathB string, tol float64) (int, error) {
	a, err := loadBench(pathA)
	if err != nil {
		return 0, err
	}
	b, err := loadBench(pathB)
	if err != nil {
		return 0, err
	}
	keys := make([]string, 0, len(a))
	for k := range a {
		if _, ok := b[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		return 0, fmt.Errorf("no shared metrics between %s and %s", pathA, pathB)
	}

	fmt.Fprintf(w, "A/B: %s → %s (tolerance ±%.0f%%)\n", pathA, pathB, tol*100)
	regressions, improvements := 0, 0
	for _, k := range keys {
		va, vb := a[k], b[k]
		dir := metricDir[leafOf(k)]
		var rel float64
		switch {
		case va == vb:
			rel = 0
		case va == 0:
			// Zero baseline (e.g. recovery percentiles of a fault-free
			// point): any movement is reported but never judged — a relative
			// tolerance has no meaning against 0.
			fmt.Fprintf(w, "  note     %-55s %12.4g → %-12.4g (zero baseline, not judged)\n", k, va, vb)
			continue
		default:
			rel = (vb - va) / va
		}
		worse := rel * float64(dir) // negative when b moved the wrong way
		switch {
		case worse < -tol:
			regressions++
			fmt.Fprintf(w, "  REGRESS  %-55s %12.4g → %-12.4g (%+.1f%%)\n", k, va, vb, rel*100)
		case worse > tol:
			improvements++
			fmt.Fprintf(w, "  improve  %-55s %12.4g → %-12.4g (%+.1f%%)\n", k, va, vb, rel*100)
		}
	}
	verdict := "PASS"
	if regressions > 0 {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "verdict: %s — %d metrics compared, %d regressions, %d improvements\n",
		verdict, len(keys), regressions, improvements)
	return regressions, nil
}

func leafOf(key string) string { return key[strings.LastIndex(key, "/")+1:] }

// ---- sim-trace divergence ------------------------------------------------

// reportSimTraceAB compares two vcsim -record-trace files in lockstep and
// prints either "identical" or the first divergence (seq, virtual time,
// event kind, differing field). Returns whether the traces diverge.
func reportSimTraceAB(w io.Writer, pathA, pathB string) (bool, error) {
	fa, err := os.Open(pathA)
	if err != nil {
		return false, err
	}
	defer fa.Close()
	fb, err := os.Open(pathB)
	if err != nil {
		return false, err
	}
	defer fb.Close()
	div, n, err := sim.CompareTraces(fa, fb)
	if err != nil {
		return false, err
	}
	if div == nil {
		fmt.Fprintf(w, "sim trace A/B: identical — %d records match (%s vs %s)\n", n, pathA, pathB)
		return false, nil
	}
	fmt.Fprintf(w, "sim trace A/B: DIVERGED at seq %d (t=%.6fs %s): %s A=%q B=%q\n",
		div.Seq, div.TimeS, div.Kind, div.Field, div.Want, div.Got)
	return true, nil
}

// ---- windowed health, alert timelines and metric snapshots ---------------

// tsDoc / tsWindow / tsClass mirror telemetry.TimeseriesDoc's JSON surface
// (the subset vcreport reads).
type tsDoc struct {
	IntervalS    float64    `json:"interval_s"`
	WindowsTotal int64      `json:"windows_total"`
	Windows      []tsWindow `json:"windows"`
}

type tsWindow struct {
	Index         int64     `json:"index"`
	StartS        float64   `json:"start_s"`
	EndS          float64   `json:"end_s"`
	Events        int64     `json:"events"`
	Commits       int64     `json:"commits"`
	Rejects       int64     `json:"rejects"`
	Conflicts     int64     `json:"conflicts"`
	Arrivals      int64     `json:"arrivals"`
	Drops         int64     `json:"drops"`
	Orphans       int64     `json:"orphans"`
	EvacRejects   int64     `json:"evac_rejects"`
	Faults        int64     `json:"faults"`
	Incident      int       `json:"incident"`
	IncidentKind  string    `json:"incident_kind"`
	CommitsPerS   float64   `json:"commits_per_s"`
	RejectRatio   float64   `json:"reject_ratio"`
	ConflictRatio float64   `json:"conflict_ratio"`
	DropRatio     float64   `json:"drop_ratio"`
	Classes       []tsClass `json:"classes"`
}

type tsClass struct {
	Class  string `json:"class"`
	DelayN int64  `json:"delay_n"`
	P99US  int64  `json:"delay_p99_us"`
}

// alertsDoc mirrors telemetry.AlertsDoc's JSON surface.
type alertsDoc struct {
	IntervalS float64 `json:"interval_s"`
	Status    []struct {
		Rule          string  `json:"rule"`
		Firing        bool    `json:"firing"`
		Fires         int     `json:"fires"`
		Resolves      int     `json:"resolves"`
		FiringS       float64 `json:"firing_s"`
		MaxFastBurn   float64 `json:"max_fast_burn"`
		FiringWindows int64   `json:"firing_windows"`
	} `json:"status"`
	Events []struct {
		Rule         string  `json:"rule"`
		State        string  `json:"state"`
		TimeS        float64 `json:"time_s"`
		FastBurn     float64 `json:"fast_burn"`
		SlowBurn     float64 `json:"slow_burn"`
		Incident     int     `json:"incident"`
		IncidentKind string  `json:"incident_kind"`
	} `json:"events"`
}

func loadJSONDoc(path string, into interface{}) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(raw, into); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// healthAggregates flattens one timeseries document into run-level
// comparables. Ratio means are event-weighted (totals over totals, not a
// mean of per-window ratios), so sparse windows don't dominate.
func healthAggregates(doc *tsDoc) map[string]float64 {
	var commits, rejects, nochange, conflicts, arrivals, drops, orphans, evacRej int64
	var unhealthy int64
	classN := map[string]int64{}
	classP99Sum := map[string]float64{}
	var horizon float64
	for i := range doc.Windows {
		w := &doc.Windows[i]
		commits += w.Commits
		rejects += w.Rejects
		conflicts += w.Conflicts
		arrivals += w.Arrivals
		drops += w.Drops
		orphans += w.Orphans
		evacRej += w.EvacRejects
		if w.DropRatio > 0 {
			unhealthy++
		}
		horizon += doc.IntervalS
		for _, c := range w.Classes {
			if c.DelayN > 0 {
				classN[c.Class]++
				classP99Sum[c.Class] += float64(c.P99US)
			}
		}
	}
	_ = nochange
	agg := map[string]float64{
		"windows":           float64(len(doc.Windows)),
		"commits_per_s":     0,
		"reject_ratio":      0,
		"conflict_ratio":    0,
		"drop_ratio":        0,
		"unhealthy_windows": float64(unhealthy),
	}
	if horizon > 0 {
		agg["commits_per_s"] = float64(commits) / horizon
	}
	if t := commits + rejects; t > 0 {
		agg["reject_ratio"] = float64(rejects) / float64(t)
	}
	if t := commits + conflicts; t > 0 {
		agg["conflict_ratio"] = float64(conflicts) / float64(t)
	}
	if t := arrivals + orphans; t > 0 {
		agg["drop_ratio"] = float64(drops+evacRej) / float64(t)
	}
	for c, n := range classN {
		agg["delay_p99_us/"+c] = classP99Sum[c] / float64(n)
	}
	return agg
}

// healthDir gives each health comparable its direction (higher/lower
// better); per-class delay keys match by prefix.
func healthDir(key string) int {
	if key == "commits_per_s" {
		return +1
	}
	return -1
}

func reportTimeseries(w io.Writer, path string) error {
	var doc tsDoc
	if err := loadJSONDoc(path, &doc); err != nil {
		return err
	}
	agg := healthAggregates(&doc)
	fmt.Fprintf(w, "timeseries: %d windows held (%d total, %.0fs each)\n",
		len(doc.Windows), doc.WindowsTotal, doc.IntervalS)
	fmt.Fprintf(w, "  commits %.2f/s, reject ratio %.4f, conflict ratio %.4f, drop ratio %.4f, %d window(s) with drops\n",
		agg["commits_per_s"], agg["reject_ratio"], agg["conflict_ratio"], agg["drop_ratio"],
		int(agg["unhealthy_windows"]))
	var classes []string
	for k := range agg {
		if strings.HasPrefix(k, "delay_p99_us/") {
			classes = append(classes, strings.TrimPrefix(k, "delay_p99_us/"))
		}
	}
	sort.Strings(classes)
	for _, c := range classes {
		fmt.Fprintf(w, "  class %-12s mean windowed p99 delay %.0fµs\n", c, agg["delay_p99_us/"+c])
	}
	// Incident-marked windows show where faults landed in the series.
	last := 0
	for i := range doc.Windows {
		w2 := &doc.Windows[i]
		if w2.Incident != 0 && w2.Incident != last && w2.Faults > 0 {
			fmt.Fprintf(w, "  incident %d (%s) in window %d [%.0fs, %.0fs): drop ratio %.3f\n",
				w2.Incident, w2.IncidentKind, w2.Index, w2.StartS, w2.EndS, w2.DropRatio)
			last = w2.Incident
		}
	}
	return nil
}

func reportAlerts(w io.Writer, path string) error {
	var doc alertsDoc
	if err := loadJSONDoc(path, &doc); err != nil {
		return err
	}
	fmt.Fprintf(w, "alerts: %d transitions\n", len(doc.Events))
	for _, ev := range doc.Events {
		inc := ""
		if ev.Incident != 0 {
			inc = fmt.Sprintf(" incident=%d(%s)", ev.Incident, ev.IncidentKind)
		}
		fmt.Fprintf(w, "  t=%7.1fs %-7s %-18s fast burn %.1f slow burn %.1f%s\n",
			ev.TimeS, ev.State, ev.Rule, ev.FastBurn, ev.SlowBurn, inc)
	}
	total := 0.0
	for _, st := range doc.Status {
		total += st.FiringS
		fmt.Fprintf(w, "  rule %-18s fires=%d resolves=%d alert minutes %.2f, max fast burn %.1f\n",
			st.Rule, st.Fires, st.Resolves, st.FiringS/60, st.MaxFastBurn)
	}
	fmt.Fprintf(w, "  total alert minutes: %.2f\n", total/60)
	return nil
}

// reportMetrics summarizes a final /metrics.json snapshot: totals per
// counter family plus the latency-histogram percentiles.
func reportMetrics(w io.Writer, path string) error {
	var doc struct {
		Metrics []struct {
			Name  string            `json:"name"`
			Type  string            `json:"type"`
			Label map[string]string `json:"labels"`
			Value float64           `json:"value"`
			Count int64             `json:"count"`
			P50   int64             `json:"p50"`
			P99   int64             `json:"p99"`
		} `json:"metrics"`
	}
	if err := loadJSONDoc(path, &doc); err != nil {
		return err
	}
	if len(doc.Metrics) == 0 {
		return fmt.Errorf("%s: no metrics; not a /metrics.json snapshot?", path)
	}
	counters := map[string]float64{}
	var names []string
	fmt.Fprintf(w, "metrics: %d instruments in snapshot\n", len(doc.Metrics))
	for _, m := range doc.Metrics {
		switch m.Type {
		case "counter":
			if _, seen := counters[m.Name]; !seen {
				names = append(names, m.Name)
			}
			counters[m.Name] += m.Value
		case "histogram":
			if m.Count > 0 {
				fmt.Fprintf(w, "  %-38s n=%-7d p50=%-10d p99=%d\n", m.Name, m.Count, m.P50, m.P99)
			}
		}
	}
	sort.Strings(names)
	for _, n := range names {
		if counters[n] > 0 {
			fmt.Fprintf(w, "  %-38s total=%.0f\n", n, counters[n])
		}
	}
	return nil
}

// reportHealthAB compares two runs' windowed-health aggregates (plus alert
// minutes when timelines are given) and returns the regression count.
func reportHealthAB(w io.Writer, pathA, pathB, alertsA, alertsB string, tol float64) (int, error) {
	var a, b tsDoc
	if err := loadJSONDoc(pathA, &a); err != nil {
		return 0, err
	}
	if err := loadJSONDoc(pathB, &b); err != nil {
		return 0, err
	}
	aggA, aggB := healthAggregates(&a), healthAggregates(&b)
	if alertsA != "" {
		var da, db alertsDoc
		if err := loadJSONDoc(alertsA, &da); err != nil {
			return 0, err
		}
		if err := loadJSONDoc(alertsB, &db); err != nil {
			return 0, err
		}
		sum := func(d *alertsDoc) (s float64) {
			for _, st := range d.Status {
				s += st.FiringS
			}
			return s / 60
		}
		aggA["alert_minutes"], aggB["alert_minutes"] = sum(&da), sum(&db)
	}
	keys := make([]string, 0, len(aggA))
	for k := range aggA {
		if k == "windows" {
			continue // context, not a health comparable
		}
		if _, ok := aggB[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "health A/B: %s → %s (tolerance ±%.0f%%)\n", pathA, pathB, tol*100)
	regressions, improvements := 0, 0
	for _, k := range keys {
		va, vb := aggA[k], aggB[k]
		var rel float64
		switch {
		case va == vb:
			continue
		case va == 0:
			fmt.Fprintf(w, "  note     %-30s %12.4g → %-12.4g (zero baseline, not judged)\n", k, va, vb)
			continue
		default:
			rel = (vb - va) / va
		}
		worse := rel * float64(healthDir(k))
		switch {
		case worse < -tol:
			regressions++
			fmt.Fprintf(w, "  REGRESS  %-30s %12.4g → %-12.4g (%+.1f%%)\n", k, va, vb, rel*100)
		case worse > tol:
			improvements++
			fmt.Fprintf(w, "  improve  %-30s %12.4g → %-12.4g (%+.1f%%)\n", k, va, vb, rel*100)
		}
	}
	verdict := "PASS"
	if regressions > 0 {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "health verdict: %s — %d aggregates compared, %d regressions, %d improvements\n",
		verdict, len(keys), regressions, improvements)
	return regressions, nil
}

// ---- per-class delay + fairness from a decision trace --------------------

// traceRecord is the subset of telemetry.DecisionRecord vcreport reads.
type traceRecord struct {
	Kind     string  `json:"kind"`
	Session  int     `json:"session"`
	Admitted bool    `json:"admitted"`
	Class    string  `json:"class"`
	DelayMS  float64 `json:"delay_ms"`
}

func reportTrace(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	byClass := map[string][]float64{}
	records := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec traceRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return fmt.Errorf("%s:%d: %w", path, records+1, err)
		}
		records++
		if rec.DelayMS <= 0 {
			continue
		}
		class := rec.Class
		if class == "" {
			class = "default"
		}
		byClass[class] = append(byClass[class], rec.DelayMS)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(byClass) == 0 {
		fmt.Fprintf(w, "trace: %d records, none carrying a session delay\n", records)
		return nil
	}

	classes := make([]string, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	fmt.Fprintf(w, "trace: %d records, session delay by SLO class\n", records)
	var means []float64
	for _, c := range classes {
		d := byClass[c]
		sort.Float64s(d)
		mean := 0.0
		for _, v := range d {
			mean += v
		}
		mean /= float64(len(d))
		means = append(means, mean)
		fmt.Fprintf(w, "  %-12s n=%-5d mean=%8.2fms p50=%8.2fms p99=%8.2fms\n",
			c, len(d), mean, quantile(d, 0.50), quantile(d, 0.99))
	}
	fmt.Fprintf(w, "  fairness (Jain over class means): %.4f\n", jain(means))
	return nil
}

// quantile reads q from an ascending-sorted slice (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// jain is the fairness index (Σx)²/(n·Σx²) ∈ (0, 1].
func jain(xs []float64) float64 {
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if len(xs) == 0 || sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// ---- per-phase attribution from spans ------------------------------------

// spanRecord is the subset of telemetry.SpanRecord vcreport reads.
type spanRecord struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent"`
	Name   string `json:"name"`
	Cat    string `json:"cat"`
	DurNs  int64  `json:"dur_ns"`
}

func reportSpans(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	type agg struct {
		count int
		total int64
	}
	byName := map[string]*agg{}
	var names []string
	spans := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec spanRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return fmt.Errorf("%s:%d: %w", path, spans+1, err)
		}
		spans++
		a := byName[rec.Name]
		if a == nil {
			a = &agg{}
			byName[rec.Name] = a
			names = append(names, rec.Name)
		}
		a.count++
		a.total += rec.DurNs
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if spans == 0 {
		return fmt.Errorf("%s: no spans", path)
	}
	// Heaviest first. Parents contain their children, so this is
	// attribution per span family, not a partition of wall time.
	sort.Slice(names, func(i, j int) bool { return byName[names[i]].total > byName[names[j]].total })
	fmt.Fprintf(w, "spans: %d records, time attribution by phase\n", spans)
	for _, n := range names {
		a := byName[n]
		fmt.Fprintf(w, "  %-16s n=%-6d total=%12s mean=%10s\n",
			n, a.count, time.Duration(a.total).Round(time.Microsecond),
			(time.Duration(a.total) / time.Duration(a.count)).Round(time.Microsecond))
	}
	return nil
}
