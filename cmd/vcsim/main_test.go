package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-duration", "30", "-interval", "10", "-users", "20"}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"vcsim:", "t=", "final:", "constraints (1)-(8) hold",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunNrstInit(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-duration", "20", "-init", "nrst", "-users", "16"}, &buf); err != nil {
		t.Fatalf("run nrst: %v", err)
	}
	if !strings.Contains(buf.String(), "init=nrst") {
		t.Fatal("init policy not reported")
	}
}

func TestRunChurnMode(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-churn", "-duration", "120", "-rate", "0.1", "-hold", "60",
		"-interval", "30", "-users", "24", "-shards", "2"}, &buf)
	if err != nil {
		t.Fatalf("run churn: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"vcsim churn:", "reopt latency:", "oracle", "final state feasible",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("churn output missing %q:\n%s", want, out)
		}
	}
}

func TestRunRejectsUnknownInit(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-init", "oracle"}, &buf); err == nil {
		t.Fatal("unknown init accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nope"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
}
