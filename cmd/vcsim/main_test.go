package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRunEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-duration", "30", "-interval", "10", "-users", "20"}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"vcsim:", "t=", "final:", "constraints (1)-(8) hold",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunNrstInit(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-duration", "20", "-init", "nrst", "-users", "16"}, &buf); err != nil {
		t.Fatalf("run nrst: %v", err)
	}
	if !strings.Contains(buf.String(), "init=nrst") {
		t.Fatal("init policy not reported")
	}
}

func TestRunChurnMode(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-churn", "-duration", "120", "-rate", "0.1", "-hold", "60",
		"-interval", "30", "-users", "24", "-shards", "2"}, &buf)
	if err != nil {
		t.Fatalf("run churn: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"vcsim churn:", "reopt latency:", "oracle", "final state feasible",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("churn output missing %q:\n%s", want, out)
		}
	}
}

func TestRunChurnTraceOut(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.jsonl")
	var buf bytes.Buffer
	err := run([]string{"-churn", "-duration", "120", "-rate", "0.1", "-hold", "60",
		"-interval", "30", "-users", "24", "-shards", "2", "-trace-out", out}, &buf)
	if err != nil {
		t.Fatalf("run churn -trace-out: %v", err)
	}
	log := buf.String()
	for _, want := range []string{"counterfactual-k:", "trace: wrote"} {
		if !strings.Contains(log, want) {
			t.Fatalf("output missing %q:\n%s", want, log)
		}
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("trace line %d is not JSON: %v", lines+1, err)
		}
		for _, key := range []string{"seq", "session", "kind", "latency_ns"} {
			if _, ok := rec[key]; !ok {
				t.Fatalf("trace line %d missing %q: %s", lines+1, key, sc.Text())
			}
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("trace file is empty")
	}
}

// syncBuffer lets the HTTP poller read the log while run() is still writing.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestRunChurnListen(t *testing.T) {
	var buf syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-churn", "-duration", "60", "-rate", "0.1", "-hold", "60",
			"-interval", "30", "-users", "20", "-shards", "2",
			"-listen", "127.0.0.1:0", "-linger", "2"}, &buf)
	}()

	// The serving line prints before the run starts; with -linger the
	// endpoint stays up well past it, so polling for the address and then
	// fetching is race-free.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no serving address in output:\n%s", buf.String())
		}
		out := buf.String()
		if i := strings.Index(out, "http://"); i >= 0 {
			rest := out[i+len("http://"):]
			if j := strings.IndexByte(rest, '\n'); j >= 0 {
				addr = rest[:j]
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	for _, want := range []string{"vconf_commits_total", "vconf_reopt_latency_ns", "vconf_events_total"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	if err := <-done; err != nil {
		t.Fatalf("run churn -listen: %v", err)
	}
	if !strings.Contains(buf.String(), "telemetry: serving") {
		t.Fatal("serving banner missing")
	}
}

func TestRunRejectsUnknownInit(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-init", "oracle"}, &buf); err == nil {
		t.Fatal("unknown init accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nope"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// sloFlags is the seeded chaos scenario the SLO acceptance tests run: a
// regional outage around t=12 pushes evacuation rejects over the 1%
// availability budget, firing the burn-rate alert, which resolves after
// the region heals.
func sloFlags(extra ...string) []string {
	return append([]string{"-churn", "-chaos", "-slo", "-duration", "120",
		"-rate", "0.2", "-hold", "60", "-interval", "30", "-users", "48",
		"-agents", "16", "-regions", "4", "-shards", "2", "-seed", "7"}, extra...)
}

func TestRunChaosSLOAlertTimeline(t *testing.T) {
	dir := t.TempDir()
	alertsA := filepath.Join(dir, "alertsA.json")
	alertsB := filepath.Join(dir, "alertsB.json")
	flight := filepath.Join(dir, "flight.json")

	var bufA bytes.Buffer
	if err := run(sloFlags("-alerts-out", alertsA, "-flightrec-out", flight), &bufA); err != nil {
		t.Fatalf("run chaos slo: %v", err)
	}
	out := bufA.String()
	for _, want := range []string{"slo: t=", "flightrec:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	for _, want := range []string{`fire\s+availability`, `resolve\s+availability`} {
		if !regexp.MustCompile(want).MatchString(out) {
			t.Fatalf("output missing %s:\n%s", want, out)
		}
	}

	var bufB bytes.Buffer
	if err := run(sloFlags("-alerts-out", alertsB), &bufB); err != nil {
		t.Fatalf("run chaos slo (again): %v", err)
	}
	a, err := os.ReadFile(alertsA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(alertsB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("alert timeline is not byte-identical across same-seed runs")
	}

	// The timeline must contain a fire during an injected incident and a
	// later resolve of the same rule.
	var alerts struct {
		Events []struct {
			Rule         string  `json:"rule"`
			State        string  `json:"state"`
			TimeS        float64 `json:"time_s"`
			Incident     int     `json:"incident"`
			IncidentKind string  `json:"incident_kind"`
		} `json:"events"`
	}
	if err := json.Unmarshal(a, &alerts); err != nil {
		t.Fatalf("alerts file is not JSON: %v", err)
	}
	fireIncident, fireAt := 0, -1.0
	resolved := false
	for _, ev := range alerts.Events {
		if ev.State == "fire" && ev.Incident > 0 && fireAt < 0 {
			fireIncident, fireAt = ev.Incident, ev.TimeS
			if ev.IncidentKind == "" {
				t.Fatalf("fire event missing incident kind: %+v", ev)
			}
		}
		if ev.State == "resolve" && fireAt >= 0 && ev.TimeS > fireAt {
			resolved = true
		}
	}
	if fireIncident == 0 {
		t.Fatalf("no alert fired during an injected incident:\n%s", a)
	}
	if !resolved {
		t.Fatalf("alert never resolved after firing:\n%s", a)
	}

	// The flight recorder must hold a dump correlated to that incident id.
	fr, err := os.ReadFile(flight)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Dumps []struct {
			Trigger  string `json:"trigger"`
			Incident int    `json:"incident"`
		} `json:"dumps"`
	}
	if err := json.Unmarshal(fr, &doc); err != nil {
		t.Fatalf("flightrec file is not JSON: %v", err)
	}
	correlated := false
	for _, d := range doc.Dumps {
		if d.Incident == fireIncident {
			correlated = true
		}
	}
	if !correlated {
		t.Fatalf("no flight dump correlated to incident %d:\n%s", fireIncident, fr)
	}
}

func TestRunChurnHealthFileOutputs(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.json")
	ts := filepath.Join(dir, "ts.json")
	var buf bytes.Buffer
	err := run([]string{"-churn", "-duration", "60", "-rate", "0.1", "-hold", "60",
		"-interval", "30", "-users", "24", "-shards", "2",
		"-metrics-out", metrics, "-timeseries-out", ts}, &buf)
	if err != nil {
		t.Fatalf("run churn with health outputs: %v", err)
	}
	var snap struct {
		Metrics []struct {
			Name string `json:"name"`
		} `json:"metrics"`
	}
	mb, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(mb, &snap); err != nil {
		t.Fatalf("metrics snapshot is not JSON: %v", err)
	}
	names := map[string]bool{}
	for _, m := range snap.Metrics {
		names[m.Name] = true
	}
	for _, want := range []string{"vconf_commits_total", "vconf_events_total"} {
		if !names[want] {
			t.Fatalf("metrics snapshot missing %s", want)
		}
	}
	var tsDoc struct {
		IntervalS float64          `json:"interval_s"`
		Windows   []map[string]any `json:"windows"`
	}
	tb, err := os.ReadFile(ts)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(tb, &tsDoc); err != nil {
		t.Fatalf("timeseries file is not JSON: %v", err)
	}
	if tsDoc.IntervalS != 1 || len(tsDoc.Windows) == 0 {
		t.Fatalf("timeseries doc wrong: interval=%v windows=%d", tsDoc.IntervalS, len(tsDoc.Windows))
	}
}
