package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRunEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-duration", "30", "-interval", "10", "-users", "20"}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"vcsim:", "t=", "final:", "constraints (1)-(8) hold",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunNrstInit(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-duration", "20", "-init", "nrst", "-users", "16"}, &buf); err != nil {
		t.Fatalf("run nrst: %v", err)
	}
	if !strings.Contains(buf.String(), "init=nrst") {
		t.Fatal("init policy not reported")
	}
}

func TestRunChurnMode(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-churn", "-duration", "120", "-rate", "0.1", "-hold", "60",
		"-interval", "30", "-users", "24", "-shards", "2"}, &buf)
	if err != nil {
		t.Fatalf("run churn: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"vcsim churn:", "reopt latency:", "oracle", "final state feasible",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("churn output missing %q:\n%s", want, out)
		}
	}
}

func TestRunChurnTraceOut(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.jsonl")
	var buf bytes.Buffer
	err := run([]string{"-churn", "-duration", "120", "-rate", "0.1", "-hold", "60",
		"-interval", "30", "-users", "24", "-shards", "2", "-trace-out", out}, &buf)
	if err != nil {
		t.Fatalf("run churn -trace-out: %v", err)
	}
	log := buf.String()
	for _, want := range []string{"counterfactual-k:", "trace: wrote"} {
		if !strings.Contains(log, want) {
			t.Fatalf("output missing %q:\n%s", want, log)
		}
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("trace line %d is not JSON: %v", lines+1, err)
		}
		for _, key := range []string{"seq", "session", "kind", "latency_ns"} {
			if _, ok := rec[key]; !ok {
				t.Fatalf("trace line %d missing %q: %s", lines+1, key, sc.Text())
			}
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("trace file is empty")
	}
}

// syncBuffer lets the HTTP poller read the log while run() is still writing.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestRunChurnListen(t *testing.T) {
	var buf syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-churn", "-duration", "60", "-rate", "0.1", "-hold", "60",
			"-interval", "30", "-users", "20", "-shards", "2",
			"-listen", "127.0.0.1:0", "-linger", "2"}, &buf)
	}()

	// The serving line prints before the run starts; with -linger the
	// endpoint stays up well past it, so polling for the address and then
	// fetching is race-free.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no serving address in output:\n%s", buf.String())
		}
		out := buf.String()
		if i := strings.Index(out, "http://"); i >= 0 {
			rest := out[i+len("http://"):]
			if j := strings.IndexByte(rest, '\n'); j >= 0 {
				addr = rest[:j]
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	for _, want := range []string{"vconf_commits_total", "vconf_reopt_latency_ns", "vconf_events_total"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	if err := <-done; err != nil {
		t.Fatalf("run churn -listen: %v", err)
	}
	if !strings.Contains(buf.String(), "telemetry: serving") {
		t.Fatal("serving banner missing")
	}
}

func TestRunRejectsUnknownInit(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-init", "oracle"}, &buf); err == nil {
		t.Fatal("unknown init accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nope"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
}
