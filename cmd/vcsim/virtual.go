package main

// Virtual-clock mode (-virtual, -record-trace, -replay-trace): instead of
// materializing the whole churn+fault schedule up front and interleaving
// data-plane ticks, the orchestrator pulls events lazily from the
// internal/sim discrete-event engine — memory stays O(in-flight) however
// long the horizon, and virtual time decouples completely from wall time
// (the run reports the virtual/wall rate instead of pacing against it).
// -record-trace tees the merged event stream plus each decision digest to
// a versioned JSONL trace; -replay-trace feeds a recorded trace back and
// verifies every decision digest, reporting the first divergence.

import (
	"fmt"
	"io"
	"os"
	"time"

	"vconf/internal/cost"
	"vconf/internal/faults"
	"vconf/internal/model"
	"vconf/internal/orchestrator"
	"vconf/internal/sim"
	"vconf/internal/workload"
)

// runVirtual drives the online orchestrator from a lazy event source (the
// sim engine over the churn/fault generators, or a trace replayer) and
// prints the decoupled virtual-vs-wall rate report.
func runVirtual(w io.Writer, sc *model.Scenario, ev *cost.Evaluator, opts churnOpts) error {
	var (
		src orchestrator.EventSource
		rp  *sim.Replayer
	)
	if opts.replayTrace != "" {
		f, err := os.Open(opts.replayTrace)
		if err != nil {
			return fmt.Errorf("replay-trace: %w", err)
		}
		defer f.Close()
		rp, err = sim.NewReplayer(f)
		if err != nil {
			return fmt.Errorf("replay-trace: %w", err)
		}
		src = rp
	} else {
		cs, err := workload.NewChurnSource(opts.churnCfg)
		if err != nil {
			return err
		}
		if opts.faultCfg != nil {
			fsrc, err := faults.NewSource(*opts.faultCfg)
			if err != nil {
				return err
			}
			src = sim.New(cs, fsrc)
		} else {
			src = sim.New(cs)
		}
	}

	var (
		rec     *sim.Recorder
		recFile *os.File
	)
	if opts.recordTrace != "" {
		f, err := os.Create(opts.recordTrace)
		if err != nil {
			return fmt.Errorf("record-trace: %w", err)
		}
		recFile = f
		rec, err = sim.NewRecorder(f)
		if err != nil {
			f.Close()
			return fmt.Errorf("record-trace: %w", err)
		}
	}

	ocfg := orchestrator.DefaultConfig(opts.seed)
	ocfg.Core = opts.core
	ocfg.Shards = opts.shards
	ocfg.HopBudget = opts.hopBudget
	ocfg.AgentRegion = opts.agentRegion
	orc, err := orchestrator.New(ev, opts.boot, ocfg)
	if err != nil {
		return err
	}
	defer orc.Close()

	mode := "lazy engine"
	if rp != nil {
		mode = "trace replay"
	}
	fmt.Fprintf(w, "vcsim virtual: %s source, %d sessions pool, %d agents, init=%s, horizon %.0f virtual s (control plane only)\n",
		mode, sc.NumSessions(), sc.NumAgents(), opts.initName, opts.duration)

	events := 0
	start := time.Now()
	err = orc.RunSource(src, opts.duration, func(rep orchestrator.EventReport) error {
		events++
		d := sim.Digest{Phi: rep.Objective, Active: rep.ActiveSessions, Commits: rep.Commits}
		if rp != nil {
			if div := rp.Check(d); div != nil {
				return div
			}
		}
		if rec != nil {
			return rec.Record(rep.Event, d)
		}
		return nil
	})
	wall := time.Since(start)
	if err != nil {
		return err
	}
	if rec != nil {
		if err := rec.Flush(); err != nil {
			return fmt.Errorf("record-trace: %w", err)
		}
		if err := recFile.Close(); err != nil {
			return fmt.Errorf("record-trace: %w", err)
		}
	}

	virtualS := orc.Now()
	wallS := wall.Seconds()
	if wallS <= 0 {
		wallS = 1e-9
	}
	fmt.Fprintf(w, "virtual: %d events over %.1f virtual s in %s wall — %.0fx real time, %.0f events/s\n",
		events, virtualS, wall.Round(time.Millisecond), virtualS/wallS, float64(events)/wallS)
	st := orc.Stats()
	fmt.Fprintf(w, "churn: %d arrivals (%d dropped), %d departures (%d skipped), %d commits, %d rejects\n",
		st.Arrivals, st.Dropped, st.Departures, st.Skipped, st.Commits, st.Rejects)
	if st.Incidents > 0 {
		fmt.Fprintf(w, "incidents: %d (orphans %d, evacuated %d, rejected %d)\n",
			st.Incidents, st.Orphans, st.Evacuated, st.EvacRejects)
	}
	if rec != nil {
		fmt.Fprintf(w, "trace: recorded %d events to %s\n", rec.Recorded(), opts.recordTrace)
	}
	if rp != nil {
		fmt.Fprintf(w, "replay: verified %d decisions, no divergence\n", rp.Checked())
	}
	fmt.Fprintf(w, "final: Φ=%.2f over %d live sessions\n", orc.Objective(), len(orc.ActiveSessions()))
	if err := orc.CheckInvariants(); err != nil {
		return fmt.Errorf("final state infeasible: %w", err)
	}
	fmt.Fprintln(w, "final state feasible: capacities and delay caps hold")
	return nil
}
