// Command vcsim runs the full stack end to end on one random workload: the
// control plane (AgRank bootstrap + Markov approximation) driving the
// simulated data plane (frame relay, transcoding, dual-feed migrations), and
// prints a per-second telemetry log.
//
// Usage:
//
//	vcsim [-seed N] [-duration S] [-beta B] [-init agrank|nrst] [-users N] [-interval S]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vconf/internal/agrank"
	"vconf/internal/assign"
	"vconf/internal/baseline"
	"vconf/internal/confsim"
	"vconf/internal/core"
	"vconf/internal/cost"
	"vconf/internal/model"
	"vconf/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vcsim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("vcsim", flag.ContinueOnError)
	var (
		seed     = fs.Int64("seed", 1, "random seed")
		duration = fs.Float64("duration", 120, "virtual seconds to simulate")
		beta     = fs.Float64("beta", 400, "Markov approximation β")
		initName = fs.String("init", "agrank", "bootstrap policy: agrank or nrst")
		users    = fs.Int("users", 38, "number of conferencing users")
		interval = fs.Float64("interval", 10, "telemetry print interval (virtual seconds)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	wl := workload.Prototype(*seed)
	wl.NumUsers = *users
	sc, err := workload.Generate(wl)
	if err != nil {
		return err
	}
	p := cost.DefaultParams()
	ev, err := cost.NewEvaluator(sc, p)
	if err != nil {
		return err
	}

	var boot core.Bootstrapper
	switch *initName {
	case "agrank":
		opts := agrank.DefaultOptions(2)
		boot = func(a *assign.Assignment, s model.SessionID, ledger *cost.Ledger) error {
			_, err := agrank.BootstrapSession(a, s, p, ledger, opts)
			return err
		}
	case "nrst":
		boot = func(a *assign.Assignment, s model.SessionID, ledger *cost.Ledger) error {
			return baseline.AssignSessionNearest(a, s, p, ledger)
		}
	default:
		return fmt.Errorf("unknown init policy %q", *initName)
	}

	coreCfg := core.DefaultConfig(*seed)
	coreCfg.Beta = *beta
	eng, err := core.NewEngine(ev, coreCfg)
	if err != nil {
		return err
	}
	rt, err := confsim.New(sc, p, confsim.DefaultConfig(*seed))
	if err != nil {
		return err
	}
	eng.OnHop = func(timeS float64, s model.SessionID, r core.HopResult) {
		if r.Moved {
			_ = rt.Migrate(timeS, r.Decision)
			fmt.Fprintf(w, "t=%7.1fs session %2d migrates: %s (Φ %.2f → %.2f)\n",
				timeS, s, r.Decision, r.PhiBefore, r.PhiAfter)
		}
	}
	for s := 0; s < sc.NumSessions(); s++ {
		if err := eng.ActivateSession(model.SessionID(s), boot); err != nil {
			return err
		}
	}

	fmt.Fprintf(w, "vcsim: %d users, %d sessions, %d agents, init=%s, β=%.0f\n",
		sc.NumUsers(), sc.NumSessions(), sc.NumAgents(), *initName, *beta)
	init := ev.ReportSystem(eng.Assignment())
	fmt.Fprintf(w, "t=    0.0s traffic=%8.2f Mbps delay=%6.1f ms objective=%.2f\n",
		init.InterTraffic, init.MeanDelayMS, init.Objective)

	for t := *interval; t <= *duration+1e-9; t += *interval {
		if _, err := eng.Run(t, 0); err != nil {
			return err
		}
		rt.SetAssignment(eng.Assignment())
		tel, err := rt.Tick(*interval)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "t=%7.1fs traffic=%8.2f Mbps (steady %.2f + overhead %.2f) delay=%6.1f ms frames=%d\n",
			t, tel.InterAgentMbps, tel.SteadyMbps, tel.OverheadMbps, tel.MeanDelayMS, tel.FramesRelayed)
	}

	final := ev.ReportSystem(eng.Assignment())
	hops, moves := eng.Hops()
	st := rt.Stats()
	fmt.Fprintf(w, "final: traffic %.2f→%.2f Mbps, delay %.1f→%.1f ms, hops=%d moves=%d migrations=%d overhead=%.2f Mbps·s\n",
		init.InterTraffic, final.InterTraffic, init.MeanDelayMS, final.MeanDelayMS,
		hops, moves, st.Migrations, st.TotalOverheadMbpsS)
	if err := ev.CheckFeasible(eng.Assignment()); err != nil {
		return fmt.Errorf("final assignment infeasible: %w", err)
	}
	fmt.Fprintln(w, "final assignment feasible: constraints (1)-(8) hold")
	return nil
}
