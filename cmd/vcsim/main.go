// Command vcsim runs the full stack end to end on one random workload: the
// control plane (AgRank bootstrap + Markov approximation) driving the
// simulated data plane (frame relay, transcoding, dual-feed migrations), and
// prints a per-second telemetry log.
//
// Usage:
//
//	vcsim [-seed N] [-duration S] [-beta B] [-init agrank|nrst] [-users N] [-interval S]
//	vcsim -churn [-rate λ] [-hold S] [-shards N] [-hops N] ...
//
// The -churn mode replaces the static solve with the online orchestrator: a
// Poisson arrival/departure schedule drives event-by-event incremental
// re-optimization on a sharded solver pool, and the final objective is
// compared against a from-scratch re-solve oracle.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"vconf/internal/agrank"
	"vconf/internal/assign"
	"vconf/internal/baseline"
	"vconf/internal/confsim"
	"vconf/internal/core"
	"vconf/internal/cost"
	"vconf/internal/faults"
	"vconf/internal/model"
	"vconf/internal/orchestrator"
	"vconf/internal/telemetry"
	"vconf/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vcsim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("vcsim", flag.ContinueOnError)
	var (
		seed     = fs.Int64("seed", 1, "random seed")
		duration = fs.Float64("duration", 120, "virtual seconds to simulate")
		beta     = fs.Float64("beta", 400, "Markov approximation β")
		initName = fs.String("init", "agrank", "bootstrap policy: agrank or nrst")
		users    = fs.Int("users", 38, "number of conferencing users")
		interval = fs.Float64("interval", 10, "telemetry print interval (virtual seconds)")

		churn     = fs.Bool("churn", false, "online mode: Poisson churn through the orchestrator")
		virtual   = fs.Bool("virtual", false, "virtual-clock mode: drive the orchestrator from the lazy discrete-event engine (control plane only, decoupled from wall time)")
		recTrace  = fs.String("record-trace", "", "virtual: record the merged event stream + decision digests as a versioned JSONL trace (implies -virtual)")
		repTrace  = fs.String("replay-trace", "", "virtual: replay a recorded trace and verify every decision digest; scenario flags must match the recording run (implies -virtual)")
		rate      = fs.Float64("rate", 0.05, "churn: session arrival rate λ (per virtual second)")
		hold      = fs.Float64("hold", 120, "churn: mean session hold time (virtual seconds)")
		shards    = fs.Int("shards", 0, "churn: solver pool size (0 = GOMAXPROCS)")
		hopBudget = fs.Int("hops", 0, "churn: refinement hop budget per task (0 = default)")

		listen   = fs.String("listen", "", "churn: serve /metrics, /trace.jsonl and pprof on this address (e.g. 127.0.0.1:9464)")
		traceOut = fs.String("trace-out", "", "churn: write the per-decision trace as JSONL to this file")
		spanOut  = fs.String("span-out", "", "churn: write the finished causal spans as JSONL to this file")
		linger   = fs.Float64("linger", 0, "churn: keep the -listen endpoint up this many wall seconds after the run")

		slo         = fs.Bool("slo", false, "churn: evaluate burn-rate SLO alerts over the health sampler windows and print the alert timeline")
		sloDelayMS  = fs.Float64("slo-delay-ms", 400, "churn: per-class p-high session-delay SLO target (ms) for -slo")
		sampleEvery = fs.Float64("sample-every", 1, "churn: health sampler window length (virtual seconds; 0 disables sampling)")
		metricsOut  = fs.String("metrics-out", "", "churn: write the final /metrics.json snapshot to this file")
		tsOut       = fs.String("timeseries-out", "", "churn: write the health sampler windows (/timeseries.json) to this file")
		alertsOut   = fs.String("alerts-out", "", "churn: write the SLO alert timeline (/alerts.json) to this file")
		flightOut   = fs.String("flightrec-out", "", "churn: write the flight-recorder dumps (/flightrec.json) to this file")

		chaos      = fs.Bool("chaos", false, "chaos mode: regional fleet churn with seeded fault injection (agent failures, regional outages, degradations, flash crowds)")
		agents     = fs.Int("agents", 24, "chaos: fleet size")
		regions    = fs.Int("regions", 4, "chaos: fleet regions")
		agentMTBF  = fs.Float64("agent-mtbf", 300, "chaos: mean time between per-agent failures (virtual s; 0 disables)")
		agentMTTR  = fs.Float64("agent-mttr", 60, "chaos: mean agent repair time (virtual s)")
		regionMTBF = fs.Float64("region-mtbf", 600, "chaos: mean time between per-region outages (virtual s; 0 disables)")
		regionMTTR = fs.Float64("region-mttr", 60, "chaos: mean region repair time (virtual s)")
		degMTBF    = fs.Float64("degrade-mtbf", 300, "chaos: mean time between partial capacity degradations (virtual s; 0 disables)")
		degMTTR    = fs.Float64("degrade-mttr", 60, "chaos: mean degradation repair time (virtual s)")
		flashMTBF  = fs.Float64("flash-mtbf", 300, "chaos: mean time between per-region flash crowds (virtual s; 0 disables)")
		flashSize  = fs.Int("flash-intensity", 3, "chaos: burst arrivals per flash crowd")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		sc          *model.Scenario
		homes       []int
		agentRegion []int
		err         error
	)
	if *chaos {
		fc := workload.DefaultFleetConfig(*seed)
		fc.NumAgents = *agents
		fc.NumUsers = *users
		fc.Regions = *regions
		fc.AgentBandwidthMbps = 500
		fc.AgentTranscodeSlots = 16
		sc, homes, err = workload.GenerateSyntheticFleetRegions(fc)
		if err != nil {
			return err
		}
		agentRegion = workload.AgentRegions(*agents, *regions)
	} else {
		wl := workload.Prototype(*seed)
		wl.NumUsers = *users
		sc, err = workload.Generate(wl)
		if err != nil {
			return err
		}
	}
	p := cost.DefaultParams()
	ev, err := cost.NewEvaluator(sc, p)
	if err != nil {
		return err
	}

	var boot core.Bootstrapper
	switch *initName {
	case "agrank":
		opts := agrank.DefaultOptions(2)
		boot = func(a *assign.Assignment, s model.SessionID, ledger cost.LedgerAPI) error {
			_, err := agrank.BootstrapSession(a, s, p, ledger, opts)
			return err
		}
	case "nrst":
		boot = func(a *assign.Assignment, s model.SessionID, ledger cost.LedgerAPI) error {
			return baseline.AssignSessionNearest(a, s, p, ledger)
		}
	default:
		return fmt.Errorf("unknown init policy %q", *initName)
	}

	coreCfg := core.DefaultConfig(*seed)
	coreCfg.Beta = *beta
	virtualMode := *virtual || *recTrace != "" || *repTrace != ""
	if *churn || *chaos || virtualMode {
		opts := churnOpts{
			params:      p,
			boot:        boot,
			core:        coreCfg,
			seed:        *seed,
			duration:    *duration,
			interval:    *interval,
			rate:        *rate,
			hold:        *hold,
			shards:      *shards,
			hopBudget:   *hopBudget,
			initName:    *initName,
			listen:      *listen,
			traceOut:    *traceOut,
			spanOut:     *spanOut,
			linger:      *linger,
			slo:         *slo,
			sloDelayMS:  *sloDelayMS,
			sampleEvery: *sampleEvery,
			metricsOut:  *metricsOut,
			tsOut:       *tsOut,
			alertsOut:   *alertsOut,
			flightOut:   *flightOut,
			chaos:       *chaos,
			agentRegion: agentRegion,
			homes:       homes,
			recordTrace: *recTrace,
			replayTrace: *repTrace,
		}
		opts.churnCfg = workload.ChurnConfig{
			Seed:            *seed,
			HorizonS:        *duration,
			ArrivalRatePerS: *rate,
			MeanHoldS:       *hold,
			NumSessions:     sc.NumSessions(),
		}
		if *chaos {
			// Churn draws from the front of the session pool; flash crowds
			// burst from the remaining sessions, grouped by home region, so
			// the two generators can never double-arrive a session.
			nChurn := len(homes) * 3 / 5
			opts.churnCfg.NumSessions = nChurn
			pools := make([][]int, *regions)
			for s := nChurn; s < len(homes); s++ {
				pools[homes[s]] = append(pools[homes[s]], s)
			}
			opts.faultCfg = &faults.Config{
				Seed:           *seed + 1,
				HorizonS:       *duration,
				NumAgents:      *agents,
				AgentRegion:    agentRegion,
				AgentMTBFS:     *agentMTBF,
				AgentMTTRS:     *agentMTTR,
				RegionMTBFS:    *regionMTBF,
				RegionMTTRS:    *regionMTTR,
				DegradeMTBFS:   *degMTBF,
				DegradeMTTRS:   *degMTTR,
				DegradeFloor:   0.4,
				FlashMTBFS:     *flashMTBF,
				FlashIntensity: *flashSize,
				FlashHoldS:     *hold / 2,
				FlashSessions:  pools,
			}
		}
		if virtualMode {
			return runVirtual(w, sc, ev, opts)
		}
		if *chaos {
			events, err := workload.PoissonSchedule(opts.churnCfg)
			if err != nil {
				return err
			}
			faultEvents, err := faults.Schedule(*opts.faultCfg)
			if err != nil {
				return err
			}
			opts.events = faults.Merge(events, faultEvents)
		}
		return runChurn(w, sc, ev, opts)
	}
	eng, err := core.NewEngine(ev, coreCfg)
	if err != nil {
		return err
	}
	rt, err := confsim.New(sc, p, confsim.DefaultConfig(*seed))
	if err != nil {
		return err
	}
	eng.OnHop = func(timeS float64, s model.SessionID, r core.HopResult) {
		if r.Moved {
			_ = rt.Migrate(timeS, r.Decision)
			fmt.Fprintf(w, "t=%7.1fs session %2d migrates: %s (Φ %.2f → %.2f)\n",
				timeS, s, r.Decision, r.PhiBefore, r.PhiAfter)
		}
	}
	for s := 0; s < sc.NumSessions(); s++ {
		if err := eng.ActivateSession(model.SessionID(s), boot); err != nil {
			return err
		}
	}

	fmt.Fprintf(w, "vcsim: %d users, %d sessions, %d agents, init=%s, β=%.0f\n",
		sc.NumUsers(), sc.NumSessions(), sc.NumAgents(), *initName, *beta)
	init := ev.ReportSystem(eng.Assignment())
	fmt.Fprintf(w, "t=    0.0s traffic=%8.2f Mbps delay=%6.1f ms objective=%.2f\n",
		init.InterTraffic, init.MeanDelayMS, init.Objective)

	for t := *interval; t <= *duration+1e-9; t += *interval {
		if _, err := eng.Run(t, 0); err != nil {
			return err
		}
		rt.SetAssignment(eng.Assignment())
		tel, err := rt.Tick(*interval)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "t=%7.1fs traffic=%8.2f Mbps (steady %.2f + overhead %.2f) delay=%6.1f ms frames=%d\n",
			t, tel.InterAgentMbps, tel.SteadyMbps, tel.OverheadMbps, tel.MeanDelayMS, tel.FramesRelayed)
	}

	final := ev.ReportSystem(eng.Assignment())
	hops, moves := eng.Hops()
	st := rt.Stats()
	fmt.Fprintf(w, "final: traffic %.2f→%.2f Mbps, delay %.1f→%.1f ms, hops=%d moves=%d migrations=%d overhead=%.2f Mbps·s\n",
		init.InterTraffic, final.InterTraffic, init.MeanDelayMS, final.MeanDelayMS,
		hops, moves, st.Migrations, st.TotalOverheadMbpsS)
	if err := ev.CheckFeasible(eng.Assignment()); err != nil {
		return fmt.Errorf("final assignment infeasible: %w", err)
	}
	fmt.Fprintln(w, "final assignment feasible: constraints (1)-(8) hold")
	return nil
}

// printHealBreakdown attributes healing wall time phase by phase from the
// span ring: degrade (scale application), evict (teardown), re-home
// (re-bootstrap) and re-balance (post-recovery reopt selection), printed
// as per-incident means next to the TTR percentiles so a slow recovery
// points at its slow phase.
func printHealBreakdown(w io.Writer, sink *telemetry.Sink, incidents int) {
	if sink == nil || incidents == 0 {
		return
	}
	sums := map[string]time.Duration{}
	for _, sp := range sink.Spans().Spans() {
		switch sp.Name {
		case "heal", "degrade", "evict", "re-home", "re-balance":
			sums[sp.Name] += time.Duration(sp.DurNs)
		}
	}
	per := func(name string) time.Duration {
		return (sums[name] / time.Duration(incidents)).Round(time.Microsecond)
	}
	fmt.Fprintf(w, "heal phases (mean/incident): total %s = degrade %s + evict %s + re-home %s; re-balance %s across recoveries\n",
		per("heal"), per("degrade"), per("evict"), per("re-home"),
		sums["re-balance"].Round(time.Microsecond))
}

// printHealthSummary prints the SLO alert timeline, per-rule burn-rate
// status and the flight-recorder activity — the human-readable face of
// /alerts.json and /flightrec.json. All virtual-time, so the block is
// byte-identical across same-seed runs.
func printHealthSummary(w io.Writer, sink *telemetry.Sink) {
	if eng := sink.Alerts(); eng != nil {
		for _, ev := range eng.Events() {
			inc := ""
			if ev.Incident != 0 {
				inc = fmt.Sprintf(" incident=%d(%s)", ev.Incident, ev.IncidentKind)
			}
			fmt.Fprintf(w, "slo: t=%7.1fs %-7s %-18s fast burn %.1f slow burn %.1f%s\n",
				ev.TimeS, ev.State, ev.Rule, ev.FastBurn, ev.SlowBurn, inc)
		}
		for _, rs := range eng.Summary() {
			fmt.Fprintf(w, "slo: rule %-18s fires=%d resolves=%d firing %.0fs (%d windows), max fast burn %.1f\n",
				rs.Rule, rs.Fires, rs.Resolves, rs.FiringS, rs.FiringWindows, rs.MaxFastBurn)
		}
	}
	if fl := sink.Flight(); fl != nil {
		if dumps := fl.Dumps(); len(dumps) > 0 || fl.Dropped() > 0 {
			fmt.Fprintf(w, "flightrec: %d dumps frozen (%d dropped)\n", len(dumps), fl.Dropped())
		}
	}
}

// writeDoc streams one exposition document to a file.
func writeDoc(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := write(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// churnOpts bundles the -churn mode knobs (the flag surface of runChurn).
type churnOpts struct {
	params    cost.Params
	boot      core.Bootstrapper
	core      core.Config
	seed      int64
	duration  float64
	interval  float64
	rate      float64
	hold      float64
	shards    int
	hopBudget int
	initName  string
	listen    string
	traceOut  string
	spanOut   string
	linger    float64
	// Health monitoring: slo enables the stock burn-rate rule set with
	// sloDelayMS as the per-class delay target; sampleEvery sizes the
	// sampler windows; the *Out paths dump the exposition documents.
	slo         bool
	sloDelayMS  float64
	sampleEvery float64
	metricsOut  string
	tsOut       string
	alertsOut   string
	flightOut   string
	// chaos mode: events is the pre-merged churn+fault schedule (nil falls
	// back to plain Poisson churn), agentRegion maps agent → region for the
	// orchestrator's regional healing, homes maps session → home region for
	// per-region telemetry labels.
	chaos       bool
	events      []workload.Event
	agentRegion []int
	homes       []int
	// Virtual-clock mode: churnCfg/faultCfg are the lazy generator specs
	// (faultCfg nil outside chaos mode); recordTrace/replayTrace are the
	// sim-trace file paths.
	churnCfg    workload.ChurnConfig
	faultCfg    *faults.Config
	recordTrace string
	replayTrace string
}

// runChurn drives the online orchestrator over a Poisson churn schedule and
// reports per-interval telemetry plus the final drift vs a from-scratch
// re-solve oracle.
func runChurn(w io.Writer, sc *model.Scenario, ev *cost.Evaluator, opts churnOpts) error {
	events := opts.events
	if events == nil {
		var err error
		events, err = workload.PoissonSchedule(opts.churnCfg)
		if err != nil {
			return err
		}
	}

	// The sink stays nil unless asked for: a nil *telemetry.Sink is the
	// zero-overhead disabled state on every orchestrator hot path. Chaos
	// mode always builds one — the heal-phase breakdown reads the span
	// ring.
	var sink *telemetry.Sink
	if opts.listen != "" || opts.traceOut != "" || opts.spanOut != "" || opts.chaos || opts.slo ||
		opts.metricsOut != "" || opts.tsOut != "" || opts.alertsOut != "" || opts.flightOut != "" {
		workers := opts.shards
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		cfg := telemetry.Config{
			Workers:       workers,
			TraceCapacity: len(events) + 8,
			SessionRegion: opts.homes,
			SpanCapacity:  16 * (len(events) + 8),
			Classes:       workload.SLOClassNames,
			SessionClass:  workload.SessionClasses(sc, 0),
		}
		if opts.sampleEvery > 0 {
			cfg.Sample = &telemetry.SamplerConfig{IntervalS: opts.sampleEvery}
		}
		if opts.slo {
			targets := make(map[string]int64, len(workload.SLOClassNames))
			for _, c := range workload.SLOClassNames {
				targets[c] = int64(opts.sloDelayMS * 1000)
			}
			cfg.SLO = telemetry.DefaultSLORules(workload.SLOClassNames, targets)
		}
		sink = telemetry.New(cfg)
	}
	if opts.listen != "" {
		srv, err := telemetry.Serve(sink, opts.listen)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(w, "telemetry: serving /metrics, /trace.jsonl, /spans.jsonl, /trace.chrome.json, /timeseries.json, /alerts.json, /flightrec.json, /debug/pprof on http://%s\n", srv.Addr())
	}

	ocfg := orchestrator.DefaultConfig(opts.seed)
	ocfg.Core = opts.core
	ocfg.Shards = opts.shards
	ocfg.HopBudget = opts.hopBudget
	ocfg.Telemetry = sink
	ocfg.AgentRegion = opts.agentRegion
	orc, err := orchestrator.New(ev, opts.boot, ocfg)
	if err != nil {
		return err
	}
	defer orc.Close()
	rt, err := confsim.New(sc, opts.params, confsim.DefaultConfig(opts.seed))
	if err != nil {
		return err
	}
	orc.AttachRuntime(rt)

	fmt.Fprintf(w, "vcsim churn: %d sessions pool, %d agents, init=%s, λ=%.3f/s, hold=%.0fs, %d events\n",
		sc.NumSessions(), sc.NumAgents(), opts.initName, opts.rate, opts.hold, len(events))

	// Process events interval by interval so the telemetry log interleaves
	// churn with data-plane measurements. The horizon itself is always the
	// last boundary, so a duration that is not a multiple of the interval
	// still processes the tail events and ticks the data plane to the end.
	i := 0
	for t := math.Min(opts.interval, opts.duration); ; t = math.Min(t+opts.interval, opts.duration) {
		for i < len(events) && events[i].TimeS <= t {
			e := events[i]
			if dt := e.TimeS - rt.Now(); dt > 1e-9 {
				if _, err := rt.Tick(dt); err != nil {
					return err
				}
			}
			rep, err := orc.HandleEvent(e)
			if err != nil {
				return err
			}
			if e.Kind.IsFault() {
				fmt.Fprintf(w, "t=%7.1fs fault %-13s agent=%d region=%d scale=%.2f orphans=%d evac=%d rej=%d Φ=%.2f live=%d\n",
					e.TimeS, e.Kind, e.Agent, e.Region, e.Scale,
					rep.Orphans, rep.Evacuated, rep.EvacRejects, rep.Objective, rep.ActiveSessions)
				i++
				continue
			}
			kind := "arrive"
			if e.Kind == workload.EventDeparture {
				kind = "depart"
			}
			note := ""
			if !rep.Admitted {
				// An unadmitted arrival was dropped; an unadmitted departure
				// is the benign echo of an earlier drop.
				if e.Kind == workload.EventArrival {
					note = " (dropped)"
				} else {
					note = " (skipped)"
				}
			}
			fmt.Fprintf(w, "t=%7.1fs %s session %2d%s: reopt=%d commits=%d latency=%s Φ=%.2f live=%d\n",
				e.TimeS, kind, e.Session, note, len(rep.Reopt), rep.Commits,
				rep.Latency.Round(10*time.Microsecond), rep.Objective, rep.ActiveSessions)
			i++
		}
		if dt := t - rt.Now(); dt > 1e-9 {
			if _, err := rt.Tick(dt); err != nil {
				return err
			}
		}
		tel, err := rt.Tick(1e-3)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "t=%7.1fs traffic=%8.2f Mbps (steady %.2f + overhead %.2f) delay=%6.1f ms live=%d\n",
			t, tel.InterAgentMbps, tel.SteadyMbps, tel.OverheadMbps, tel.MeanDelayMS, tel.ActiveSessions)
		sink.FeedTick(t)
		if t >= opts.duration-1e-9 {
			break
		}
	}

	// Close the sampler's partial tail window so the final series, alert
	// evaluation and file dumps cover the whole horizon.
	sink.FlushSampler()

	st := orc.Stats()
	rts := rt.Stats()
	meanLat := "n/a"
	if st.Events > 0 {
		meanLat = (st.ReoptTotal / time.Duration(st.Events)).Round(10 * time.Microsecond).String()
	}
	fmt.Fprintf(w, "churn: %d arrivals (%d dropped), %d departures (%d skipped), %d tasks, %d commits, %d rejects\n",
		st.Arrivals, st.Dropped, st.Departures, st.Skipped, st.Tasks, st.Commits, st.Rejects)
	fmt.Fprintf(w, "reopt latency: mean %s, p50 %s, p99 %s, max %s; data plane: %d migrations, overhead %.2f Mbps·s\n",
		meanLat, st.ReoptP50.Round(10*time.Microsecond), st.ReoptP99.Round(10*time.Microsecond),
		st.ReoptMax.Round(10*time.Microsecond), rts.Migrations, rts.TotalOverheadMbpsS)
	if opts.chaos || st.Incidents > 0 {
		fmt.Fprintf(w, "incidents: %d (orphans %d, evacuated %d, rejected %d), time-to-recovery p50 %s p99 %s, rejects during degradation %d\n",
			st.Incidents, st.Orphans, st.Evacuated, st.EvacRejects,
			st.RecoverP50.Round(10*time.Microsecond), st.RecoverP99.Round(10*time.Microsecond),
			st.DegradedRejects)
		printHealBreakdown(w, sink, st.Incidents)
	}
	printHealthSummary(w, sink)

	active := orc.ActiveSessions()
	switch {
	case len(active) == 0:
		fmt.Fprintln(w, "final: no live sessions at horizon")
	default:
		// The yardstick re-solves from scratch on the surviving fleet: any
		// capacity still lost to unrecovered incidents degrades the oracle's
		// engine the same way it degrades the live ledger.
		_, oraclePhi, err := orchestrator.OracleDegraded(ev, active, opts.boot, opts.core, 200, orc.CapacityScales())
		if err != nil {
			// The oracle re-bootstraps from scratch; under tight capacity it
			// can fail where the incrementally-built live state is feasible.
			// That is a limitation of the yardstick, not of this run.
			fmt.Fprintf(w, "final: online Φ=%.2f; oracle unavailable (%v)\n", orc.Objective(), err)
			break
		}
		online := orc.Objective()
		drift := 0.0
		if oraclePhi > 0 {
			drift = 100 * (online - oraclePhi) / oraclePhi
		}
		fmt.Fprintf(w, "final: online Φ=%.2f vs oracle Φ=%.2f (drift %+.1f%%) over %d live sessions\n",
			online, oraclePhi, drift, len(active))
	}
	if n, mean, p99 := sink.CounterfactualSummary(); n > 0 {
		fmt.Fprintf(w, "counterfactual-k: %d committed decisions, regret vs 2nd-best mean %.3f p99 %.3f\n",
			n, mean, p99)
	}
	if err := orc.CheckInvariants(); err != nil {
		return fmt.Errorf("final state infeasible: %w", err)
	}
	fmt.Fprintln(w, "final state feasible: capacities and delay caps hold")
	if opts.traceOut != "" {
		f, err := os.Create(opts.traceOut)
		if err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		werr := sink.Recorder().WriteJSONL(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("trace-out: %w", werr)
		}
		fmt.Fprintf(w, "trace: wrote %d decision records to %s\n", sink.Recorder().Len(), opts.traceOut)
	}
	if opts.spanOut != "" {
		f, err := os.Create(opts.spanOut)
		if err != nil {
			return fmt.Errorf("span-out: %w", err)
		}
		werr := sink.Spans().WriteJSONL(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("span-out: %w", werr)
		}
		fmt.Fprintf(w, "spans: wrote %d span records to %s\n", sink.Spans().Len(), opts.spanOut)
	}
	if opts.metricsOut != "" {
		if err := writeDoc(opts.metricsOut, sink.Registry().WriteJSON); err != nil {
			return fmt.Errorf("metrics-out: %w", err)
		}
		fmt.Fprintf(w, "metrics: wrote final snapshot to %s\n", opts.metricsOut)
	}
	if opts.tsOut != "" {
		if err := writeDoc(opts.tsOut, sink.Sampler().WriteJSON); err != nil {
			return fmt.Errorf("timeseries-out: %w", err)
		}
		fmt.Fprintf(w, "timeseries: wrote %d windows to %s\n", sink.Sampler().TotalWindows(), opts.tsOut)
	}
	if opts.alertsOut != "" {
		if err := writeDoc(opts.alertsOut, sink.Alerts().WriteJSON); err != nil {
			return fmt.Errorf("alerts-out: %w", err)
		}
		fmt.Fprintf(w, "alerts: wrote %d transitions to %s\n", len(sink.Alerts().Events()), opts.alertsOut)
	}
	if opts.flightOut != "" {
		if err := writeDoc(opts.flightOut, sink.Flight().WriteJSON); err != nil {
			return fmt.Errorf("flightrec-out: %w", err)
		}
		fmt.Fprintf(w, "flightrec: wrote %d dumps to %s\n", len(sink.Flight().Dumps()), opts.flightOut)
	}
	if opts.listen != "" && opts.linger > 0 {
		// Keep the endpoint alive so an external scraper (e.g. the CI smoke
		// test) can read the finished run's metrics before we exit.
		fmt.Fprintf(w, "telemetry: lingering %.0fs for scrapes\n", opts.linger)
		time.Sleep(time.Duration(opts.linger * float64(time.Second)))
	}
	return nil
}
