// Run metadata for the BENCH_<n>.json perf-trajectory payloads: toolchain,
// host shape, and the exact flag surface a run used, so numbers stay
// comparable — and anomalies stay diagnosable — across machines, Go
// releases, and flag tweaks.
package main

import (
	"flag"
	"runtime"
	"time"
)

// benchSchemaVersion tags every BENCH_<n>.json payload so downstream
// consumers (cmd/vcreport) can reject shape drift loudly instead of
// misreading renamed fields as regressions. Bump it whenever a report
// struct changes incompatibly. Reports written before the tag existed
// omit the field; consumers treat that as accepted legacy.
const benchSchemaVersion = 1

// runMeta is embedded under "meta" in every JSON benchmark report.
type runMeta struct {
	GoVersion   string            `json:"go_version"`
	GOOS        string            `json:"goos"`
	GOARCH      string            `json:"goarch"`
	NumCPU      int               `json:"num_cpu"`
	GOMAXPROCS  int               `json:"gomaxprocs"`
	Seed        int64             `json:"seed"`
	Flags       map[string]string `json:"flags"`
	GeneratedAt string            `json:"generated_at"`
}

// buildMeta snapshots the environment plus every flag's effective value
// (explicitly set or default) from the already-parsed FlagSet.
func buildMeta(fs *flag.FlagSet, seed int64) runMeta {
	flags := make(map[string]string)
	fs.VisitAll(func(f *flag.Flag) { flags[f.Name] = f.Value.String() })
	return runMeta{
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Seed:        seed,
		Flags:       flags,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
}
