// Chaos-recovery mode: `vcbench -run chaos -format json > BENCH_7.json`
// measures the orchestrator's self-healing under seeded fault injection —
// the same regional fleet and churn schedule replayed with no faults, a
// light fault mix, and a heavy one (agent failures, regional outages,
// partial degradations, flash crowds). Each point reports healing activity
// (incidents, orphans, evacuations, rejects during degradation),
// time-to-recovery percentiles, event throughput with the fault barriers in
// the stream, and the final objective's drift against a from-scratch
// re-solve on the surviving (degraded) fleet.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"vconf/internal/agrank"
	"vconf/internal/assign"
	"vconf/internal/core"
	"vconf/internal/cost"
	"vconf/internal/faults"
	"vconf/internal/model"
	"vconf/internal/orchestrator"
	"vconf/internal/telemetry"
	"vconf/internal/workload"
)

// chaosPoint is one fault-intensity measurement.
type chaosPoint struct {
	Name string `json:"name"`
	// Intensity is "none", "light" or "heavy".
	Intensity   string `json:"intensity"`
	Agents      int    `json:"agents"`
	Events      int    `json:"events"`
	FaultEvents int    `json:"fault_events"`
	// EventsPerSec counts all schedule events (churn + faults) fully
	// processed per wall second — fault events drain the pipeline, so this
	// prices the healing barriers into the stream.
	EventsPerSec float64 `json:"events_per_sec"`
	Commits      int     `json:"commits"`
	Conflicts    int     `json:"conflicts"`
	Dropped      int     `json:"dropped"`
	// Healing activity.
	Incidents       int `json:"incidents"`
	Orphans         int `json:"orphans"`
	Evacuated       int `json:"evacuated"`
	EvacRejects     int `json:"evac_rejects"`
	DegradedRejects int `json:"degraded_rejects"`
	// Time-to-recovery per incident (apply fault → post-healing state
	// committed), in milliseconds.
	RecoveryP50Ms float64 `json:"recovery_p50_ms"`
	RecoveryP99Ms float64 `json:"recovery_p99_ms"`
	ReoptP50Ms    float64 `json:"reopt_p50_ms"`
	ReoptP99Ms    float64 `json:"reopt_p99_ms"`
	// OracleDriftPct compares the final online objective against a
	// from-scratch re-solve over the same live sessions on the surviving
	// fleet (negative: online beat the bounded-duration oracle).
	OracleDriftPct float64 `json:"oracle_drift_pct"`
	LiveSessions   int     `json:"live_sessions"`
}

// chaosReport is the BENCH_7.json payload.
type chaosReport struct {
	GeneratedBy string `json:"generated_by"`
	// SchemaVersion is benchSchemaVersion at write time; vcreport refuses
	// mismatched versions.
	SchemaVersion int          `json:"schema_version"`
	Description   string       `json:"description"`
	Meta          runMeta      `json:"meta"`
	Points        []chaosPoint `json:"points"`
	// ThroughputRatios maps intensity → events-per-sec ratio over the
	// fault-free point: the streaming cost of the healing barriers.
	ThroughputRatios map[string]float64 `json:"throughput_ratios"`
}

// chaosMix scales the fault processes: MTBFs divide by the multiplier, so
// higher mix = more incidents over the same horizon.
type chaosMix struct {
	name                   string
	agentMTBF, regionMTBF  float64
	degradeMTBF, flashMTBF float64
}

// chaosSweepStack builds the sweep fixture: a finite-capacity regional
// fleet, Poisson churn over the front of the session pool, and per-region
// flash reserves from the back.
func chaosSweepStack(fleetAgents int, horizonS float64, seed int64) (*cost.Evaluator, core.Bootstrapper, []int, []workload.Event, [][]int, error) {
	const regions = 6
	fc := workload.DefaultFleetConfig(seed)
	fc.NumAgents = fleetAgents
	fc.NumUsers = 8 * fleetAgents
	fc.MinSessionSize = 4
	fc.MaxSessionSize = 6
	fc.Regions = regions
	fc.AgentBandwidthMbps = 3000
	fc.AgentTranscodeSlots = 12
	sc, homes, err := workload.GenerateSyntheticFleetRegions(fc)
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	p := cost.DefaultParams()
	ev, err := cost.NewEvaluator(sc, p)
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	opts := agrank.DefaultOptions(3)
	boot := func(a *assign.Assignment, s model.SessionID, ledger cost.LedgerAPI) error {
		_, err := agrank.BootstrapSession(a, s, p, ledger, opts)
		return err
	}
	nChurn := len(homes) * 3 / 5
	churn, err := workload.PoissonSchedule(workload.ChurnConfig{
		Seed:            seed,
		HorizonS:        horizonS,
		ArrivalRatePerS: 1.0,
		MeanHoldS:       80,
		NumSessions:     nChurn,
	})
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	pools := make([][]int, regions)
	for s := nChurn; s < len(homes); s++ {
		pools[homes[s]] = append(pools[homes[s]], s)
	}
	agentRegion := workload.AgentRegions(fleetAgents, regions)
	return ev, boot, agentRegion, churn, pools, nil
}

// runChaosSweep measures self-healing at increasing fault intensity over
// identical churn fixtures.
func runChaosSweep(w io.Writer, format string, fleetAgents int, horizonS float64, seed int64, meta runMeta, sink *telemetry.Sink) error {
	ev, boot, agentRegion, churn, pools, err := chaosSweepStack(fleetAgents, horizonS, seed)
	if err != nil {
		return fmt.Errorf("chaos sweep: %w", err)
	}
	mixes := []chaosMix{
		{name: "none"},
		{name: "light", agentMTBF: 8 * horizonS, regionMTBF: 16 * horizonS, degradeMTBF: 8 * horizonS, flashMTBF: 4 * horizonS},
		{name: "heavy", agentMTBF: 2 * horizonS, regionMTBF: 4 * horizonS, degradeMTBF: 2 * horizonS, flashMTBF: 2 * horizonS},
	}

	run := func(mix chaosMix) (chaosPoint, error) {
		events := churn
		faultEvents := 0
		if mix.name != "none" {
			fl, err := faults.Schedule(faults.Config{
				Seed:           seed + 1,
				HorizonS:       horizonS,
				NumAgents:      fleetAgents,
				AgentRegion:    agentRegion,
				AgentMTBFS:     mix.agentMTBF,
				AgentMTTRS:     horizonS / 5,
				RegionMTBFS:    mix.regionMTBF,
				RegionMTTRS:    horizonS / 6,
				DegradeMTBFS:   mix.degradeMTBF,
				DegradeMTTRS:   horizonS / 5,
				DegradeFloor:   0.4,
				FlashMTBFS:     mix.flashMTBF,
				FlashIntensity: 4,
				FlashHoldS:     horizonS / 6,
				FlashSessions:  pools,
			})
			if err != nil {
				return chaosPoint{}, err
			}
			faultEvents = len(fl)
			events = faults.Merge(churn, fl)
		}

		cfg := orchestrator.DefaultConfig(seed)
		cfg.Shards = 4
		cfg.LedgerShards = fleetAgents
		cfg.HopBudget = 12
		cfg.MaxReoptSessions = 4
		cfg.Core.NeighborWindow = 4
		cfg.Pipeline = true
		cfg.MaxInFlight = 4
		cfg.Telemetry = sink
		cfg.AgentRegion = agentRegion
		orc, err := orchestrator.New(ev, boot, cfg)
		if err != nil {
			return chaosPoint{}, err
		}
		defer orc.Close()
		start := time.Now()
		if _, err := orc.Run(events, 0); err != nil {
			return chaosPoint{}, err
		}
		elapsed := time.Since(start)
		if err := orc.CheckInvariants(); err != nil {
			return chaosPoint{}, fmt.Errorf("post-run invariants: %w", err)
		}
		st := orc.Stats()
		pt := chaosPoint{
			Name:            "ChaosRecovery/" + mix.name,
			Intensity:       mix.name,
			Agents:          fleetAgents,
			Events:          st.Events,
			FaultEvents:     faultEvents,
			EventsPerSec:    float64(st.Events) / elapsed.Seconds(),
			Commits:         st.Commits,
			Conflicts:       st.Conflicts,
			Dropped:         st.Dropped,
			Incidents:       st.Incidents,
			Orphans:         st.Orphans,
			Evacuated:       st.Evacuated,
			EvacRejects:     st.EvacRejects,
			DegradedRejects: st.DegradedRejects,
			RecoveryP50Ms:   float64(st.RecoverP50) / 1e6,
			RecoveryP99Ms:   float64(st.RecoverP99) / 1e6,
			ReoptP50Ms:      float64(st.ReoptP50) / 1e6,
			ReoptP99Ms:      float64(st.ReoptP99) / 1e6,
		}
		active := orc.ActiveSessions()
		pt.LiveSessions = len(active)
		if len(active) > 0 {
			if _, oraclePhi, err := orchestrator.OracleDegraded(ev, active, boot, cfg.Core, 100, orc.CapacityScales()); err == nil && oraclePhi > 0 {
				pt.OracleDriftPct = 100 * (orc.Objective() - oraclePhi) / oraclePhi
			}
		}
		return pt, nil
	}

	rep := chaosReport{
		GeneratedBy:   "vcbench -run chaos",
		SchemaVersion: benchSchemaVersion,
		Meta:          meta,
		Description: "Self-healing under seeded fault injection: the same regional fleet and Poisson churn " +
			"schedule replayed fault-free, with a light fault mix, and with a heavy one (agent failures, " +
			"regional outages, partial capacity degradations, per-region flash crowds). Fault events act " +
			"as drain barriers in the pipelined scheduler; time-to-recovery spans applying a fault through " +
			"committing the healed state (evacuation + re-optimization). Drift compares the final online " +
			"objective to a from-scratch re-solve on the surviving fleet at its degraded capacities.",
		ThroughputRatios: map[string]float64{},
	}
	var baseline chaosPoint
	for i, mix := range mixes {
		pt, err := run(mix)
		if err != nil {
			return fmt.Errorf("chaos sweep: %s: %w", mix.name, err)
		}
		rep.Points = append(rep.Points, pt)
		if i == 0 {
			baseline = pt
		} else if baseline.EventsPerSec > 0 {
			rep.ThroughputRatios[mix.name+"-vs-none"] = pt.EventsPerSec / baseline.EventsPerSec
		}
		if mix.name != "none" && pt.Incidents == 0 {
			return fmt.Errorf("chaos sweep: %s mix injected no incidents", mix.name)
		}
	}

	if format == "json" {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	for _, p := range rep.Points {
		fmt.Fprintf(w, "chaos | %-22s | agents %3d | %7.1f events/sec | incidents %3d | orphans %3d (evac %3d, rej %3d) | ttr p50 %6.2fms p99 %6.2fms | drift %+.1f%%\n",
			p.Name, p.Agents, p.EventsPerSec, p.Incidents, p.Orphans, p.Evacuated, p.EvacRejects,
			p.RecoveryP50Ms, p.RecoveryP99Ms, p.OracleDriftPct)
	}
	for k, v := range rep.ThroughputRatios {
		fmt.Fprintf(w, "chaos | throughput %-22s | %.2fx\n", k, v)
	}
	return nil
}
