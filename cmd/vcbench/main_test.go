package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunQuickSmoke(t *testing.T) {
	// Fast experiments only; the heavy sweeps get their own -quick runs.
	for _, id := range []string{"fig2", "fig3"} {
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run([]string{"-run", id, "-quick"}, &buf); err != nil {
				t.Fatalf("run(%s): %v", id, err)
			}
			out := buf.String()
			if !strings.Contains(out, id+" |") {
				t.Fatalf("output missing %q rows:\n%s", id, out)
			}
			if !strings.Contains(out, "done in") {
				t.Fatal("missing completion line")
			}
		})
	}
}

func TestRunQuickSweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps take a few seconds")
	}
	for _, id := range []string{"table2", "fig9", "fig10", "solvers"} {
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run([]string{"-run", id, "-quick", "-scenarios", "2", "-duration", "30"}, &buf); err != nil {
				t.Fatalf("run(%s): %v", id, err)
			}
			if buf.Len() == 0 {
				t.Fatal("no output")
			}
		})
	}
}

func TestRunMicroQuickJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("micro benchmarks take several seconds")
	}
	var buf bytes.Buffer
	if err := run([]string{"-run", "micro", "-quick", "-format", "json"}, &buf); err != nil {
		t.Fatalf("run(micro): %v", err)
	}
	var rep microReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("micro output is not valid JSON: %v\n%s", err, buf.String())
	}
	// Run metadata must identify the toolchain, host shape and flag surface.
	if rep.Meta.GoVersion == "" || rep.Meta.NumCPU <= 0 || rep.Meta.GOMAXPROCS <= 0 {
		t.Fatalf("meta incomplete: %+v", rep.Meta)
	}
	if rep.Meta.Seed != 1 {
		t.Fatalf("meta seed = %d, want default 1", rep.Meta.Seed)
	}
	if rep.Meta.Flags["quick"] != "true" || rep.Meta.Flags["format"] != "json" {
		t.Fatalf("meta flags missing effective values: %v", rep.Meta.Flags)
	}
	if rep.Meta.GeneratedAt == "" {
		t.Fatal("meta missing generation timestamp")
	}
	// 3 families × dense/sparse, plus the delay-cache series: the warm-hop
	// vs rebuild-hop pair and the warm objective point.
	if len(rep.Benchmarks) != 9 {
		t.Fatalf("benchmarks = %d, want 9 (3 families × dense/sparse + 3 delay-cache series)", len(rep.Benchmarks))
	}
	names := make(map[string]bool, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		names[b.Name] = true
		if b.NsPerOp <= 0 || b.Iterations <= 0 {
			t.Fatalf("degenerate measurement: %+v", b)
		}
		if (b.Name == "HopSession/sparse" || b.Name == "HopSession/warm-hop") && b.AllocsPerOp != 0 {
			t.Fatalf("sparse hop path allocates: %+v", b)
		}
	}
	for _, want := range []string{"HopSession/warm-hop", "HopSession/rebuild-hop", "SessionObjective/warm"} {
		if !names[want] {
			t.Fatalf("missing delay-cache series %q in %v", want, names)
		}
	}
	if rep.Speedups["HopSession"] <= 1 {
		t.Fatalf("sparse hop slower than dense: %v", rep.Speedups)
	}
	if sp, ok := rep.Speedups["HopSession/warm-hop"]; !ok || sp <= 0 {
		t.Fatalf("warm-hop speedup unrecorded: %v", rep.Speedups)
	}
	if rep.Speedups["SessionObjective/warm"] <= 1 {
		t.Fatalf("warm objective evaluation slower than rebuild: %v", rep.Speedups)
	}
}

func TestRunMicroRejectsCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "micro", "-format", "csv"}, &buf); err == nil {
		t.Fatal("micro with csv format accepted")
	}
	if err := run([]string{"-run", "fig3", "-format", "json"}, &buf); err == nil {
		t.Fatal("json format accepted for a table experiment")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "fig99"}, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-format", "xml"}, &buf); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestRunCSVFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "fig3", "-format", "csv"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "done in") {
		t.Fatal("csv output should not carry timing lines")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 9 {
		t.Fatalf("csv lines = %d, want ≥ 9", len(lines))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "fig3,") {
			t.Fatalf("csv line missing experiment column: %q", line)
		}
	}
}

func TestQuickWorkloadShrinks(t *testing.T) {
	wl := quickWorkload(1)
	if wl.NumUsers != 30 || wl.NumUserNodes != 64 {
		t.Fatalf("quick workload = %d users / %d nodes", wl.NumUsers, wl.NumUserNodes)
	}
}
