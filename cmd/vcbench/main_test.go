package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunQuickSmoke(t *testing.T) {
	// Fast experiments only; the heavy sweeps get their own -quick runs.
	for _, id := range []string{"fig2", "fig3"} {
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run([]string{"-run", id, "-quick"}, &buf); err != nil {
				t.Fatalf("run(%s): %v", id, err)
			}
			out := buf.String()
			if !strings.Contains(out, id+" |") {
				t.Fatalf("output missing %q rows:\n%s", id, out)
			}
			if !strings.Contains(out, "done in") {
				t.Fatal("missing completion line")
			}
		})
	}
}

func TestRunQuickSweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps take a few seconds")
	}
	for _, id := range []string{"table2", "fig9", "fig10", "solvers"} {
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run([]string{"-run", id, "-quick", "-scenarios", "2", "-duration", "30"}, &buf); err != nil {
				t.Fatalf("run(%s): %v", id, err)
			}
			if buf.Len() == 0 {
				t.Fatal("no output")
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "fig99"}, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-format", "xml"}, &buf); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestRunCSVFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "fig3", "-format", "csv"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "done in") {
		t.Fatal("csv output should not carry timing lines")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 9 {
		t.Fatalf("csv lines = %d, want ≥ 9", len(lines))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "fig3,") {
			t.Fatalf("csv line missing experiment column: %q", line)
		}
	}
}

func TestQuickWorkloadShrinks(t *testing.T) {
	wl := quickWorkload(1)
	if wl.NumUsers != 30 || wl.NumUserNodes != 64 {
		t.Fatalf("quick workload = %d users / %d nodes", wl.NumUsers, wl.NumUserNodes)
	}
}
