// Micro-benchmark mode: `vcbench -run micro [-format json]` measures the hop
// pipeline's hot paths before/after the sparse rewrite and emits the
// ns/op + allocs/op table the repo's BENCH_<n>.json perf-trajectory files
// record. "before" numbers run the dense reference implementation that is
// kept behind core.Config.DenseEval; "after" numbers run the production
// sparse pipeline — same binary, same fixtures, so the comparison is exact.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"vconf"
	"vconf/internal/assign"
	"vconf/internal/baseline"
	"vconf/internal/core"
	"vconf/internal/cost"
	"vconf/internal/model"
	"vconf/internal/orchestrator"
	"vconf/internal/telemetry"
	"vconf/internal/workload"
)

// microResult is one benchmark measurement.
type microResult struct {
	Name        string  `json:"name"`
	Agents      int     `json:"agents"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// shardSweepPoint is one events/sec measurement of the orchestrator at a
// fixed worker count and a varying capacity-ledger stripe count.
type shardSweepPoint struct {
	Name    string `json:"name"`
	Shards  int    `json:"shards"`
	Workers int    `json:"workers"`
	Agents  int    `json:"agents"`
	Events  int    `json:"events"`
	// EventsPerSec is the headline throughput: churn events fully processed
	// (admission + incremental re-optimization barrier) per wall second.
	EventsPerSec float64 `json:"events_per_sec"`
	NsPerEvent   float64 `json:"ns_per_event"`
	Commits      int     `json:"commits"`
	Conflicts    int     `json:"conflicts"`
	Rejects      int     `json:"rejects"`
	Dropped      int     `json:"dropped"`
}

// microReport is the BENCH_<n>.json payload.
type microReport struct {
	GeneratedBy string `json:"generated_by"`
	// SchemaVersion is benchSchemaVersion at write time; vcreport refuses
	// mismatched versions.
	SchemaVersion int    `json:"schema_version"`
	Description   string `json:"description"`
	// Meta records the toolchain, host shape and flag surface of the run.
	Meta       runMeta       `json:"meta"`
	Benchmarks []microResult `json:"benchmarks"`
	// ShardSweep is the OrchestratorEvent events/sec-vs-shard-count sweep:
	// identical fleet and schedule, shard count n = n workers over an
	// n-stripe ledger (n = 1: the legacy single-lock path).
	ShardSweep []shardSweepPoint `json:"shard_sweep,omitempty"`
	// HardwareParallelCeiling is the host's measured raw 2-way CPU speedup
	// (2 × serial-time / dual-goroutine-time of a pure spin loop). Shared
	// or throttled vCPUs push it well below 2; the shard sweep's scaling
	// is bounded by it, so read the two together (their ratio is the
	// sweep's parallel efficiency, also recorded under Speedups).
	HardwareParallelCeiling float64 `json:"hardware_parallel_ceiling,omitempty"`
	// Speedups maps benchmark family → dense-ns / sparse-ns (and the shard
	// sweep's max-shards / 1-shard throughput ratio).
	Speedups map[string]float64 `json:"speedups"`
}

func record(name string, agents int, r testing.BenchmarkResult) microResult {
	return microResult{
		Name:        name,
		Agents:      agents,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
}

// hopBench measures HopSession over the synthetic fleet. window > 0
// applies the N_ngbr candidate window; rebuild selects the per-hop
// delay-base rebuild instead of the persistent delay cache.
func hopBench(fleetAgents int, seed int64, dense, rebuild bool, window int) (testing.BenchmarkResult, error) {
	fc := workload.DefaultFleetConfig(seed)
	fc.NumAgents = fleetAgents
	sc, err := workload.GenerateSyntheticFleet(fc)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	p := cost.DefaultParams()
	ev, err := cost.NewEvaluator(sc, p)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	a := assign.New(sc)
	ledger := cost.NewLedger(sc)
	if err := baseline.Assign(a, p, ledger); err != nil {
		return testing.BenchmarkResult{}, err
	}
	cfg := core.DefaultConfig(seed)
	cfg.DenseEval = dense
	cfg.RebuildDelayBase = rebuild
	cfg.NeighborWindow = window
	rng := rand.New(rand.NewSource(seed))
	scr := core.NewHopScratch(ev)
	sessions := sc.NumSessions()
	// Warm-up pass: sizes every buffer and, on the cached path, populates
	// every session's delay entry, so the measurement is steady state.
	for s := 0; s < sessions; s++ {
		if _, err := core.HopSessionWith(a, model.SessionID(s), ev, ledger, cfg, rng, scr); err != nil {
			return testing.BenchmarkResult{}, err
		}
	}
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.HopSessionWith(a, model.SessionID(i%sessions), ev, ledger, cfg, rng, scr); err != nil {
				benchErr = err
				return
			}
		}
	})
	return res, benchErr
}

// objectiveMode selects the Φ_s evaluation path objectiveBench measures.
type objectiveMode int

const (
	objectiveDense  objectiveMode = iota // fresh load vectors + from-scratch delays
	objectiveSparse                      // sparse scratch, per-call delay-base rebuild
	objectiveWarm                        // sparse scratch, persistent delay cache (warm hits)
)

// objectiveBench measures Φ_s evaluation on the paper-scale workload. The
// warm mode cycles unchanged sessions, so it isolates what the persistent
// delay cache saves on the once-per-hop BeginSession term.
func objectiveBench(seed int64, mode objectiveMode) (testing.BenchmarkResult, int, error) {
	wl := workload.LargeScale(seed)
	wl.NumUsers = 40
	wl.NumUserNodes = 64
	sc, err := workload.Generate(wl)
	if err != nil {
		return testing.BenchmarkResult{}, 0, err
	}
	ev, err := cost.NewEvaluator(sc, cost.DefaultParams())
	if err != nil {
		return testing.BenchmarkResult{}, 0, err
	}
	a := assign.New(sc)
	if err := baseline.Assign(a, ev.Params(), cost.NewLedger(sc)); err != nil {
		return testing.BenchmarkResult{}, 0, err
	}
	sessions := sc.NumSessions()
	scr := ev.NewScratch()
	scr.SetDelayCacheEnabled(mode == objectiveWarm)
	if mode == objectiveWarm {
		for s := 0; s < sessions; s++ {
			_ = ev.BeginSession(a, model.SessionID(s), scr).Phi
		}
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := model.SessionID(i % sessions)
			if mode == objectiveDense {
				_ = ev.SessionObjective(a, s)
			} else {
				_ = ev.BeginSession(a, s, scr).Phi
			}
		}
	})
	return res, sc.NumAgents(), nil
}

// orchestratorBench measures the per-event hot path of the online churn
// orchestrator (admission + sharded incremental re-optimization).
func orchestratorBench(seed int64, dense bool) (testing.BenchmarkResult, int, error) {
	sc, err := vconf.GenerateWorkload(vconf.PrototypeWorkload(seed))
	if err != nil {
		return testing.BenchmarkResult{}, 0, err
	}
	solver, err := vconf.NewSolver(sc, vconf.WithSeed(seed))
	if err != nil {
		return testing.BenchmarkResult{}, 0, err
	}
	events, err := vconf.GenerateChurn(vconf.ChurnConfig{
		Seed:            seed,
		HorizonS:        300,
		ArrivalRatePerS: 0.1,
		MeanHoldS:       90,
		NumSessions:     sc.NumSessions(),
	})
	if err != nil {
		return testing.BenchmarkResult{}, 0, err
	}
	cfg := vconf.DefaultOrchestratorConfig(seed)
	cfg.Core.DenseEval = dense
	orc, err := solver.NewOrchestrator(cfg)
	if err != nil {
		return testing.BenchmarkResult{}, 0, err
	}
	defer orc.Close()
	active := make(map[int]bool)
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := events[i%len(events)]
			if e.Kind == vconf.ChurnArrival && active[e.Session] {
				e.Kind = vconf.ChurnDeparture
			}
			if _, err := orc.HandleEvent(e); err != nil {
				benchErr = err
				return
			}
			active[e.Session] = e.Kind == vconf.ChurnArrival
		}
	})
	return res, sc.NumAgents(), benchErr
}

// measureParallelCeiling measures this machine's raw 2-way CPU speedup: the
// wall-clock ratio of one spin worker to two concurrent ones. Cloud
// containers frequently expose vCPUs that share execution resources, so the
// achievable parallel speedup can sit well below the vCPU count; the shard
// sweep reports its scaling next to this ceiling so the curve is
// interpretable on any host.
func measureParallelCeiling() float64 {
	burn := func(n int) float64 {
		x := 1.0001
		for i := 0; i < n; i++ {
			x = x*1.0000001 + 0.000001
			if x > 2 {
				x -= 1
			}
		}
		return x
	}
	const work = 100_000_000
	start := time.Now()
	burn(work)
	serial := time.Since(start)
	start = time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			burn(work)
		}()
	}
	wg.Wait()
	par := time.Since(start)
	return 2 * serial.Seconds() / par.Seconds()
}

// shardSweepStack builds the contention workload the shard sweep runs: a
// regional synthetic fleet whose clustered sessions overlap heavily on
// their home regions' agents (re-optimization sets near the cap) with
// transcoding slots as the scarce resource, plus a dense churn schedule.
func shardSweepStack(fleetAgents int, seed int64) (*cost.Evaluator, core.Bootstrapper, []workload.Event, error) {
	fc := workload.DefaultFleetConfig(seed)
	fc.NumAgents = fleetAgents
	fc.NumUsers = 12 * fleetAgents
	fc.MinSessionSize = 4
	fc.MaxSessionSize = 6
	fc.Regions = 4
	fc.AgentBandwidthMbps = 5000
	fc.AgentTranscodeSlots = 6
	sc, err := workload.GenerateSyntheticFleet(fc)
	if err != nil {
		return nil, nil, nil, err
	}
	p := cost.DefaultParams()
	ev, err := cost.NewEvaluator(sc, p)
	if err != nil {
		return nil, nil, nil, err
	}
	boot := func(a *assign.Assignment, s model.SessionID, ledger cost.LedgerAPI) error {
		return baseline.AssignSessionNearest(a, s, p, ledger)
	}
	events, err := workload.PoissonSchedule(workload.ChurnConfig{
		Seed:            seed,
		HorizonS:        300,
		ArrivalRatePerS: 1.2,
		MeanHoldS:       80,
		NumSessions:     sc.NumSessions(),
	})
	return ev, boot, events, err
}

// runShardSweep measures OrchestratorEvent throughput (full churn events
// per wall second, admission + re-optimization barrier included) as a
// function of the orchestrator's shard count: n solver workers over an
// n-stripe capacity ledger. The 1-shard point runs the legacy single-lock
// commit path — one worker, one global commit mutex, the pre-subsystem
// configuration that the sharded P=1 pipeline is proven bit-identical to.
// A final reference point re-runs the single-lock backend at the maximum
// worker count, so the curve separates worker scaling from what the
// stripe pipeline itself contributes (the striped-vs-single-lock speedup
// at equal workers). Fleet and schedule are identical across points.
func runShardSweep(shardCounts []int, fleetAgents int, seed int64, sink *telemetry.Sink) ([]shardSweepPoint, error) {
	ev, boot, events, err := shardSweepStack(fleetAgents, seed)
	if err != nil {
		return nil, err
	}
	run := func(name string, workers, ledgerShards, shardsLabel int) (shardSweepPoint, error) {
		cfg := orchestrator.DefaultConfig(seed)
		cfg.Shards = workers
		cfg.LedgerShards = ledgerShards
		cfg.HopBudget = 8
		cfg.MaxReoptSessions = 16
		cfg.Core.NeighborWindow = 4
		cfg.Telemetry = sink
		best := shardSweepPoint{}
		// Two repetitions, keep the higher throughput (fresh orchestrator
		// each time: the schedule replays identically).
		for rep := 0; rep < 2; rep++ {
			orc, err := orchestrator.New(ev, boot, cfg)
			if err != nil {
				return best, err
			}
			start := time.Now()
			if _, err := orc.Run(events, 0); err != nil {
				orc.Close()
				return best, err
			}
			elapsed := time.Since(start)
			st := orc.Stats()
			orc.Close()
			eps := float64(st.Events) / elapsed.Seconds()
			if eps > best.EventsPerSec {
				best = shardSweepPoint{
					Name:         name,
					Shards:       shardsLabel,
					Workers:      workers,
					Agents:       fleetAgents,
					Events:       st.Events,
					EventsPerSec: eps,
					NsPerEvent:   float64(elapsed.Nanoseconds()) / float64(st.Events),
					Commits:      st.Commits,
					Conflicts:    st.Conflicts,
					Rejects:      st.Rejects,
					Dropped:      st.Dropped,
				}
			}
		}
		return best, nil
	}
	points := make([]shardSweepPoint, 0, len(shardCounts)+1)
	for _, shards := range shardCounts {
		ledger := shards
		if shards == 1 {
			ledger = -1 // legacy single-lock path (≡ sharded P=1)
		}
		pt, err := run(fmt.Sprintf("OrchestratorEvent/shards=%d", shards), shards, ledger, shards)
		if err != nil {
			return nil, err
		}
		points = append(points, pt)
	}
	// Lock-isolation reference: single global commit lock at the sweep's
	// maximum worker count.
	maxW := shardCounts[len(shardCounts)-1]
	ref, err := run(fmt.Sprintf("OrchestratorEvent/single-lock-%dworkers", maxW), maxW, -1, 1)
	if err != nil {
		return nil, err
	}
	points = append(points, ref)
	return points, nil
}

// runMicro executes the micro-benchmark suite. fleetAgents sizes the
// HopSession fleet (≥100 for the acceptance numbers; -quick shrinks it).
func runMicro(w io.Writer, format string, fleetAgents int, seed int64, meta runMeta, sink *telemetry.Sink) error {
	rep := microReport{
		GeneratedBy:   "vcbench -run micro",
		SchemaVersion: benchSchemaVersion,
		Meta:          meta,
		Description: "Hop-pipeline hot paths (dense reference vs sparse pipeline, and the persistent " +
			"per-session delay cache vs the per-hop delay-base rebuild: HopSession/warm-hop runs the " +
			"N_ngbr=1 windowed chain where each hop's BeginSession is a pure warm hit re-synchronized by " +
			"the previous commit, and SessionObjective/warm evaluates unchanged sessions) plus the sharded-ledger " +
			"orchestrator sweep: events/sec vs shard count, where n shards = n solver workers over an " +
			"n-stripe capacity ledger and n=1 is the legacy single-lock commit path (bit-identical to " +
			"sharded P=1). Wall-clock scaling is bounded by hardware_parallel_ceiling — on shared-vCPU " +
			"hosts that ceiling sits well below the vCPU count, so judge the sweep by its parallel " +
			"efficiency (scaling/ceiling), not by the shard count.",
		Speedups: map[string]float64{},
	}
	add := func(family string, agents int, denseRes, sparseRes testing.BenchmarkResult) {
		d := record(family+"/dense", agents, denseRes)
		s := record(family+"/sparse", agents, sparseRes)
		rep.Benchmarks = append(rep.Benchmarks, d, s)
		if s.NsPerOp > 0 {
			rep.Speedups[family] = d.NsPerOp / s.NsPerOp
		}
	}

	hopDense, err := hopBench(fleetAgents, seed, true, false, 0)
	if err != nil {
		return fmt.Errorf("micro: hop dense: %w", err)
	}
	hopSparse, err := hopBench(fleetAgents, seed, false, false, 0)
	if err != nil {
		return fmt.Errorf("micro: hop sparse: %w", err)
	}
	add("HopSession", fleetAgents, hopDense, hopSparse)

	// Warm-hop acceptance series: the N_ngbr = 1 windowed chain, persistent
	// delay cache vs per-hop delay-base rebuild — the BeginSession term the
	// cache removes is a large share of a windowed hop.
	hopRebuild, err := hopBench(fleetAgents, seed, false, true, 1)
	if err != nil {
		return fmt.Errorf("micro: hop rebuild: %w", err)
	}
	hopWarm, err := hopBench(fleetAgents, seed, false, false, 1)
	if err != nil {
		return fmt.Errorf("micro: hop warm: %w", err)
	}
	rb := record("HopSession/rebuild-hop", fleetAgents, hopRebuild)
	wm := record("HopSession/warm-hop", fleetAgents, hopWarm)
	rep.Benchmarks = append(rep.Benchmarks, rb, wm)
	if wm.NsPerOp > 0 {
		rep.Speedups["HopSession/warm-hop"] = rb.NsPerOp / wm.NsPerOp
	}

	objDense, agents, err := objectiveBench(seed, objectiveDense)
	if err != nil {
		return fmt.Errorf("micro: objective dense: %w", err)
	}
	objSparse, _, err := objectiveBench(seed, objectiveSparse)
	if err != nil {
		return fmt.Errorf("micro: objective sparse: %w", err)
	}
	add("SessionObjective", agents, objDense, objSparse)
	objWarm, _, err := objectiveBench(seed, objectiveWarm)
	if err != nil {
		return fmt.Errorf("micro: objective warm: %w", err)
	}
	ow := record("SessionObjective/warm", agents, objWarm)
	rep.Benchmarks = append(rep.Benchmarks, ow)
	if sparseNs := float64(objSparse.T.Nanoseconds()) / float64(objSparse.N); ow.NsPerOp > 0 {
		rep.Speedups["SessionObjective/warm"] = sparseNs / ow.NsPerOp
	}

	orcDense, agents, err := orchestratorBench(seed, true)
	if err != nil {
		return fmt.Errorf("micro: orchestrator dense: %w", err)
	}
	orcSparse, _, err := orchestratorBench(seed, false)
	if err != nil {
		return fmt.Errorf("micro: orchestrator sparse: %w", err)
	}
	add("OrchestratorEvent", agents, orcDense, orcSparse)

	shardCounts := []int{1, 2, 4, 8}
	sweepAgents := fleetAgents
	if sweepAgents < 100 {
		shardCounts = []int{1, 2}
	}
	sweep, err := runShardSweep(shardCounts, sweepAgents, seed, sink)
	if err != nil {
		return fmt.Errorf("micro: shard sweep: %w", err)
	}
	rep.ShardSweep = sweep
	rep.HardwareParallelCeiling = measureParallelCeiling()
	if n := len(shardCounts); len(sweep) > n && sweep[0].EventsPerSec > 0 {
		maxPt, refPt := sweep[n-1], sweep[n] // max-shards point, single-lock-at-max-workers reference
		scaling := maxPt.EventsPerSec / sweep[0].EventsPerSec
		rep.Speedups["OrchestratorEvent/shards"] = scaling
		if rep.HardwareParallelCeiling > 0 {
			rep.Speedups["OrchestratorEvent/shards-parallel-efficiency"] =
				scaling / rep.HardwareParallelCeiling
		}
		if refPt.EventsPerSec > 0 {
			rep.Speedups["OrchestratorEvent/striped-vs-single-lock"] =
				maxPt.EventsPerSec / refPt.EventsPerSec
		}
	}

	if format == "json" {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	for _, r := range rep.Benchmarks {
		fmt.Fprintf(w, "micro | %-24s | agents %3d | %12.0f ns/op | %6d allocs/op | %8d B/op\n",
			r.Name, r.Agents, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
	}
	for _, p := range rep.ShardSweep {
		fmt.Fprintf(w, "micro | %-28s | agents %3d | %8.1f events/sec | %4d commits | %4d conflicts | %4d rejects\n",
			p.Name, p.Agents, p.EventsPerSec, p.Commits, p.Conflicts, p.Rejects)
	}
	for fam, sp := range rep.Speedups {
		fmt.Fprintf(w, "micro | speedup %-16s | %.2fx\n", fam, sp)
	}
	return nil
}
