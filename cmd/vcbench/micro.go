// Micro-benchmark mode: `vcbench -run micro [-format json]` measures the hop
// pipeline's hot paths before/after the sparse rewrite and emits the
// ns/op + allocs/op table the repo's BENCH_<n>.json perf-trajectory files
// record. "before" numbers run the dense reference implementation that is
// kept behind core.Config.DenseEval; "after" numbers run the production
// sparse pipeline — same binary, same fixtures, so the comparison is exact.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"vconf"
	"vconf/internal/assign"
	"vconf/internal/baseline"
	"vconf/internal/core"
	"vconf/internal/cost"
	"vconf/internal/model"
	"vconf/internal/workload"
)

// microResult is one benchmark measurement.
type microResult struct {
	Name        string  `json:"name"`
	Agents      int     `json:"agents"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// microReport is the BENCH_<n>.json payload.
type microReport struct {
	GeneratedBy string        `json:"generated_by"`
	Description string        `json:"description"`
	Benchmarks  []microResult `json:"benchmarks"`
	// Speedups maps benchmark family → dense-ns / sparse-ns.
	Speedups map[string]float64 `json:"speedups"`
}

func record(name string, agents int, r testing.BenchmarkResult) microResult {
	return microResult{
		Name:        name,
		Agents:      agents,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
}

// hopBench measures HopSession over the synthetic fleet.
func hopBench(fleetAgents int, seed int64, dense bool) (testing.BenchmarkResult, error) {
	fc := workload.DefaultFleetConfig(seed)
	fc.NumAgents = fleetAgents
	sc, err := workload.GenerateSyntheticFleet(fc)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	p := cost.DefaultParams()
	ev, err := cost.NewEvaluator(sc, p)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	a := assign.New(sc)
	ledger := cost.NewLedger(sc)
	if err := baseline.Assign(a, p, ledger); err != nil {
		return testing.BenchmarkResult{}, err
	}
	cfg := core.DefaultConfig(seed)
	cfg.DenseEval = dense
	rng := rand.New(rand.NewSource(seed))
	scr := core.NewHopScratch(ev)
	sessions := sc.NumSessions()
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.HopSessionWith(a, model.SessionID(i%sessions), ev, ledger, cfg, rng, scr); err != nil {
				benchErr = err
				return
			}
		}
	})
	return res, benchErr
}

// objectiveBench measures Φ_s evaluation on the paper-scale workload.
func objectiveBench(seed int64, dense bool) (testing.BenchmarkResult, int, error) {
	wl := workload.LargeScale(seed)
	wl.NumUsers = 40
	wl.NumUserNodes = 64
	sc, err := workload.Generate(wl)
	if err != nil {
		return testing.BenchmarkResult{}, 0, err
	}
	ev, err := cost.NewEvaluator(sc, cost.DefaultParams())
	if err != nil {
		return testing.BenchmarkResult{}, 0, err
	}
	a := assign.New(sc)
	if err := baseline.Assign(a, ev.Params(), cost.NewLedger(sc)); err != nil {
		return testing.BenchmarkResult{}, 0, err
	}
	sessions := sc.NumSessions()
	scr := ev.NewScratch()
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := model.SessionID(i % sessions)
			if dense {
				_ = ev.SessionObjective(a, s)
			} else {
				_ = ev.BeginSession(a, s, scr).Phi
			}
		}
	})
	return res, sc.NumAgents(), nil
}

// orchestratorBench measures the per-event hot path of the online churn
// orchestrator (admission + sharded incremental re-optimization).
func orchestratorBench(seed int64, dense bool) (testing.BenchmarkResult, int, error) {
	sc, err := vconf.GenerateWorkload(vconf.PrototypeWorkload(seed))
	if err != nil {
		return testing.BenchmarkResult{}, 0, err
	}
	solver, err := vconf.NewSolver(sc, vconf.WithSeed(seed))
	if err != nil {
		return testing.BenchmarkResult{}, 0, err
	}
	events, err := vconf.GenerateChurn(vconf.ChurnConfig{
		Seed:            seed,
		HorizonS:        300,
		ArrivalRatePerS: 0.1,
		MeanHoldS:       90,
		NumSessions:     sc.NumSessions(),
	})
	if err != nil {
		return testing.BenchmarkResult{}, 0, err
	}
	cfg := vconf.DefaultOrchestratorConfig(seed)
	cfg.Core.DenseEval = dense
	orc, err := solver.NewOrchestrator(cfg)
	if err != nil {
		return testing.BenchmarkResult{}, 0, err
	}
	defer orc.Close()
	active := make(map[int]bool)
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := events[i%len(events)]
			if e.Kind == vconf.ChurnArrival && active[e.Session] {
				e.Kind = vconf.ChurnDeparture
			}
			if _, err := orc.HandleEvent(e); err != nil {
				benchErr = err
				return
			}
			active[e.Session] = e.Kind == vconf.ChurnArrival
		}
	})
	return res, sc.NumAgents(), benchErr
}

// runMicro executes the micro-benchmark suite. fleetAgents sizes the
// HopSession fleet (≥100 for the acceptance numbers; -quick shrinks it).
func runMicro(w io.Writer, format string, fleetAgents int, seed int64) error {
	rep := microReport{
		GeneratedBy: "vcbench -run micro",
		Description: "Hop-pipeline hot paths, dense reference (before) vs sparse zero-allocation pipeline (after)",
		Speedups:    map[string]float64{},
	}
	add := func(family string, agents int, denseRes, sparseRes testing.BenchmarkResult) {
		d := record(family+"/dense", agents, denseRes)
		s := record(family+"/sparse", agents, sparseRes)
		rep.Benchmarks = append(rep.Benchmarks, d, s)
		if s.NsPerOp > 0 {
			rep.Speedups[family] = d.NsPerOp / s.NsPerOp
		}
	}

	hopDense, err := hopBench(fleetAgents, seed, true)
	if err != nil {
		return fmt.Errorf("micro: hop dense: %w", err)
	}
	hopSparse, err := hopBench(fleetAgents, seed, false)
	if err != nil {
		return fmt.Errorf("micro: hop sparse: %w", err)
	}
	add("HopSession", fleetAgents, hopDense, hopSparse)

	objDense, agents, err := objectiveBench(seed, true)
	if err != nil {
		return fmt.Errorf("micro: objective dense: %w", err)
	}
	objSparse, _, err := objectiveBench(seed, false)
	if err != nil {
		return fmt.Errorf("micro: objective sparse: %w", err)
	}
	add("SessionObjective", agents, objDense, objSparse)

	orcDense, agents, err := orchestratorBench(seed, true)
	if err != nil {
		return fmt.Errorf("micro: orchestrator dense: %w", err)
	}
	orcSparse, _, err := orchestratorBench(seed, false)
	if err != nil {
		return fmt.Errorf("micro: orchestrator sparse: %w", err)
	}
	add("OrchestratorEvent", agents, orcDense, orcSparse)

	if format == "json" {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	for _, r := range rep.Benchmarks {
		fmt.Fprintf(w, "micro | %-24s | agents %3d | %12.0f ns/op | %6d allocs/op | %8d B/op\n",
			r.Name, r.Agents, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
	}
	for fam, sp := range rep.Speedups {
		fmt.Fprintf(w, "micro | speedup %-16s | %.2fx\n", fam, sp)
	}
	return nil
}
