// Command vcbench regenerates the paper's tables and figures.
//
// Usage:
//
//	vcbench -run fig2|fig3|fig4|fig5|fig6|fig7|table2|fig8|fig9|fig10|thm1|all
//	        [-seed N] [-scenarios N] [-duration S] [-quick]
//
// Each experiment prints rows shaped like the paper's artifact; see
// EXPERIMENTS.md for the side-by-side comparison.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"vconf/internal/experiments"
	"vconf/internal/telemetry"
	"vconf/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vcbench:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("vcbench", flag.ContinueOnError)
	var (
		which     = fs.String("run", "all", "experiment id (fig2..fig10, table2, thm1, solvers, micro, pipeline, chaos, simcore, all)")
		seed      = fs.Int64("seed", 1, "base random seed")
		scenarios = fs.Int("scenarios", 100, "random scenarios per sweep point (paper: 100)")
		duration  = fs.Float64("duration", 200, "virtual seconds of Alg. 1 per run")
		quick     = fs.Bool("quick", false, "shrink workloads for a fast smoke run")
		format    = fs.String("format", "text", "output format: text, csv, or json (micro only)")
		listen    = fs.String("listen", "", "serve /metrics, /trace.jsonl and pprof on this address while benchmarks run (adds instrumentation to orchestrator sweeps)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "text" && *format != "csv" && *format != "json" {
		return fmt.Errorf("unknown format %q (want text, csv or json)", *format)
	}
	if *quick {
		*scenarios = minInt(*scenarios, 5)
		*duration = minFloat(*duration, 60)
	}
	meta := buildMeta(fs, *seed)

	// A nil sink is the zero-overhead disabled state; -listen turns on live
	// exposition (and pprof) and feeds the orchestrator-based sweeps into it.
	var sink *telemetry.Sink
	if *listen != "" {
		sink = telemetry.New(telemetry.Config{Workers: runtime.GOMAXPROCS(0)})
		srv, err := telemetry.Serve(sink, *listen)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(w, "telemetry: serving /metrics, /trace.jsonl, /debug/pprof on http://%s\n", srv.Addr())
	}

	// The micro-benchmark suite is not an experiment table; it runs the hop
	// pipeline's before/after hot-path measurements (see micro.go) and, with
	// -format json, emits the BENCH_<n>.json perf-trajectory payload.
	if *which == "micro" {
		if *format == "csv" {
			return fmt.Errorf("micro benchmarks support text or json output, not csv")
		}
		fleetAgents := 100
		if *quick {
			fleetAgents = 20
		}
		return runMicro(w, *format, fleetAgents, *seed, meta, sink)
	}
	// The pipeline sweep measures the pipelined event scheduler against the
	// serial barrier path over identical follow-the-sun fixtures; with
	// -format json it emits the BENCH_4.json perf-trajectory payload.
	if *which == "pipeline" {
		if *format == "csv" {
			return fmt.Errorf("pipeline sweep supports text or json output, not csv")
		}
		fleetAgents, horizonS := 96, 300.0
		if *quick {
			fleetAgents, horizonS = 32, 120
		}
		return runPipelineSweep(w, *format, fleetAgents, horizonS, *seed, meta, sink)
	}
	// The chaos sweep measures self-healing under seeded fault injection at
	// increasing intensity; with -format json it emits the BENCH_7.json
	// payload.
	if *which == "chaos" {
		if *format == "csv" {
			return fmt.Errorf("chaos sweep supports text or json output, not csv")
		}
		fleetAgents, horizonS := 96, 300.0
		if *quick {
			fleetAgents, horizonS = 32, 120
		}
		return runChaosSweep(w, *format, fleetAgents, horizonS, *seed, meta, sink)
	}
	// The sim-core sweep measures the lazy virtual-clock engine against the
	// eager pre-materialized path; with -format json it emits the
	// BENCH_10.json payload.
	if *which == "simcore" {
		if *format == "csv" {
			return fmt.Errorf("simcore sweep supports text or json output, not csv")
		}
		fleetAgents, horizonS, dayS := 96, 300.0, 86400.0
		if *quick {
			fleetAgents, horizonS, dayS = 32, 120, 3600
		}
		return runSimCore(w, *format, fleetAgents, horizonS, dayS, *seed, meta, sink)
	}
	if *format == "json" {
		return fmt.Errorf("json output is only available for -run micro, -run pipeline, -run chaos or -run simcore")
	}

	type experiment struct {
		id  string
		run func() ([]string, error)
	}
	sweepCfg := func() experiments.SweepConfig {
		cfg := experiments.DefaultSweepConfig(*seed)
		cfg.NumScenarios = *scenarios
		cfg.DurationS = *duration
		if *quick {
			cfg.Workload = quickWorkload
		}
		return cfg
	}
	var sweepCache *experiments.AlphaSweepResult
	runSweep := func() (*experiments.AlphaSweepResult, error) {
		if sweepCache != nil {
			return sweepCache, nil
		}
		res, err := experiments.RunAlphaSweep(sweepCfg())
		if err != nil {
			return nil, err
		}
		sweepCache = res
		return res, nil
	}

	all := []experiment{
		{"fig2", func() ([]string, error) {
			r, err := experiments.RunFig2()
			if err != nil {
				return nil, err
			}
			return r.Rows(), nil
		}},
		{"fig3", func() ([]string, error) {
			r, err := experiments.RunFig3(400, 0.01)
			if err != nil {
				return nil, err
			}
			return r.Rows(), nil
		}},
		{"fig4", func() ([]string, error) {
			r, err := experiments.RunFig4(*seed, *duration)
			if err != nil {
				return nil, err
			}
			return r.Rows(), nil
		}},
		{"fig5", func() ([]string, error) {
			r, err := experiments.RunFig5(*seed, minFloat(*duration, 120))
			if err != nil {
				return nil, err
			}
			return r.Rows("fig5"), nil
		}},
		{"fig6", func() ([]string, error) {
			r, err := experiments.RunFig6(*seed, minFloat(*duration, 100))
			if err != nil {
				return nil, err
			}
			return r.Rows("fig6"), nil
		}},
		{"fig7", func() ([]string, error) {
			r, err := experiments.RunFig7(*seed, *duration)
			if err != nil {
				return nil, err
			}
			return r.Rows(), nil
		}},
		{"table2", func() ([]string, error) {
			r, err := runSweep()
			if err != nil {
				return nil, err
			}
			return r.Table2Rows(), nil
		}},
		{"fig8", func() ([]string, error) {
			r, err := runSweep()
			if err != nil {
				return nil, err
			}
			return r.Fig8Rows(), nil
		}},
		{"fig9", func() ([]string, error) {
			cfg := experiments.DefaultFig9Config(*seed)
			cfg.NumScenarios = *scenarios
			if *quick {
				cfg.Workload = quickWorkload
				cfg.BandwidthPointsMbps = []float64{60, 120, 1000}
				cfg.TranscodePoints = []int{1, 8}
			}
			r, err := experiments.RunFig9(cfg)
			if err != nil {
				return nil, err
			}
			return r.Rows(), nil
		}},
		{"fig10", func() ([]string, error) {
			cfg := experiments.DefaultFig10Config(*seed)
			cfg.NumScenarios = *scenarios
			if *quick {
				cfg.Workload = quickWorkload
			}
			r, err := experiments.RunFig10(cfg)
			if err != nil {
				return nil, err
			}
			return r.Rows(), nil
		}},
		{"thm1", func() ([]string, error) {
			cfg := experiments.DefaultThm1Config(*seed)
			if *quick {
				cfg.HorizonS = 5000
			}
			r, err := experiments.RunThm1(cfg)
			if err != nil {
				return nil, err
			}
			return r.Rows(), nil
		}},
		{"beta", func() ([]string, error) {
			cfg := experiments.DefaultBetaSweepConfig(*seed)
			cfg.DurationS = *duration
			if *quick {
				cfg.Betas = []float64{100, 400}
				cfg.NumScenarios = 2
			} else if *scenarios < cfg.NumScenarios {
				cfg.NumScenarios = *scenarios
			}
			r, err := experiments.RunBetaSweep(cfg)
			if err != nil {
				return nil, err
			}
			return r.Rows(), nil
		}},
		{"solvers", func() ([]string, error) {
			cfg := experiments.DefaultSolverCompareConfig(*seed)
			cfg.DurationS = *duration
			if *quick {
				cfg.NumScenarios = 2
				cfg.AnnealIterations = 4000
				cfg.Workload = quickWorkload
			} else if *scenarios < cfg.NumScenarios {
				cfg.NumScenarios = *scenarios
			}
			r, err := experiments.RunSolverCompare(cfg)
			if err != nil {
				return nil, err
			}
			return r.Rows(), nil
		}},
	}

	selected := all[:0:0]
	for _, e := range all {
		if *which == "all" || *which == e.id {
			selected = append(selected, e)
		}
	}
	if len(selected) == 0 {
		return fmt.Errorf("unknown experiment %q", *which)
	}
	for _, e := range selected {
		start := time.Now()
		rows, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		if *format == "csv" {
			if err := writeCSV(w, rows); err != nil {
				return err
			}
		} else {
			for _, row := range rows {
				fmt.Fprintln(w, row)
			}
			fmt.Fprintf(w, "%s | done in %s\n", e.id, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}

// writeCSV re-emits experiment rows as CSV: the experiment id, then the
// row's pipe-separated fields as columns — a shape plotting scripts consume
// directly.
func writeCSV(w io.Writer, rows []string) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	for _, row := range rows {
		parts := strings.Split(row, "|")
		record := make([]string, 0, len(parts))
		for _, p := range parts {
			record = append(record, strings.TrimSpace(p))
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func quickWorkload(seed int64) workload.Config {
	c := workload.LargeScale(seed)
	c.NumUsers = 30
	c.NumUserNodes = 64
	return c
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
