// Pipeline-sweep mode: `vcbench -run pipeline -format json > BENCH_4.json`
// measures churn-event throughput of the pipelined event scheduler against
// the serial per-event barrier path — same fleet, same follow-the-sun
// schedule, same solver configuration, varying only Config.Pipeline and the
// in-flight cap. The workload is deliberately low-conflict (regional fleet,
// purely intra-region sessions, candidate windows on, per-agent ledger
// stripes) so event footprints are mostly disjoint and the scheduler's
// overlap — not commit-conflict retries — is what the sweep exercises.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"vconf/internal/agrank"
	"vconf/internal/assign"
	"vconf/internal/core"
	"vconf/internal/cost"
	"vconf/internal/model"
	"vconf/internal/orchestrator"
	"vconf/internal/telemetry"
	"vconf/internal/workload"
)

// pipelinePoint is one events/sec measurement.
type pipelinePoint struct {
	Name string `json:"name"`
	// Mode is "serial" (per-event barrier, pre-PR behavior) or "pipelined".
	Mode        string `json:"mode"`
	MaxInFlight int    `json:"max_in_flight"`
	Workers     int    `json:"workers"`
	Agents      int    `json:"agents"`
	Events      int    `json:"events"`
	// EventsPerSec is the headline throughput: churn events fully processed
	// (admission + incremental re-optimization) per wall second.
	EventsPerSec float64 `json:"events_per_sec"`
	NsPerEvent   float64 `json:"ns_per_event"`
	Commits      int     `json:"commits"`
	Conflicts    int     `json:"conflicts"`
	Rejects      int     `json:"rejects"`
	Dropped      int     `json:"dropped"`
	// Scheduler telemetry (zero on the serial point).
	AdmissionStalls int `json:"admission_stalls"`
	ReoptWaits      int `json:"reopt_waits"`
	QueueDepthPeak  int `json:"queue_depth_peak"`
	InFlightPeak    int `json:"in_flight_peak"`
	// Per-event re-optimization latency percentiles in milliseconds.
	ReoptP50Ms float64 `json:"reopt_p50_ms"`
	ReoptP99Ms float64 `json:"reopt_p99_ms"`
}

// pipelineReport is the BENCH_4.json payload.
type pipelineReport struct {
	GeneratedBy string `json:"generated_by"`
	// SchemaVersion is benchSchemaVersion at write time; vcreport refuses
	// mismatched versions.
	SchemaVersion int    `json:"schema_version"`
	Description   string `json:"description"`
	// Meta records the toolchain, host shape and flag surface of the run.
	Meta runMeta `json:"meta"`
	// HardwareParallelCeiling is the host's measured raw 2-way CPU speedup;
	// on shared-vCPU hosts the sweep's scaling is bounded by it.
	HardwareParallelCeiling float64         `json:"hardware_parallel_ceiling"`
	Points                  []pipelinePoint `json:"points"`
	// Speedups maps pipelined/in-flight=N → events-per-sec ratio over the
	// serial barrier point.
	Speedups map[string]float64 `json:"speedups"`
}

// pipelineStack builds the sweep's fixtures: a regional windowed fleet with
// purely intra-region sessions and a follow-the-sun diurnal churn schedule
// aligned with the fleet's session home regions.
func pipelineStack(fleetAgents int, horizonS float64, seed int64) (*cost.Evaluator, core.Bootstrapper, []workload.Event, error) {
	const regions = 8
	fc := workload.DefaultFleetConfig(seed)
	fc.NumAgents = fleetAgents
	fc.NumUsers = 8 * fleetAgents
	fc.MinSessionSize = 4
	fc.MaxSessionSize = 6
	fc.Regions = regions
	fc.CrossRegionFrac = -1 // explicit zero: footprints stay regional
	fc.AgentBandwidthMbps = 3000
	fc.AgentTranscodeSlots = 12
	sc, homes, err := workload.GenerateSyntheticFleetRegions(fc)
	if err != nil {
		return nil, nil, nil, err
	}
	p := cost.DefaultParams()
	ev, err := cost.NewEvaluator(sc, p)
	if err != nil {
		return nil, nil, nil, err
	}
	opts := agrank.DefaultOptions(3)
	boot := func(a *assign.Assignment, s model.SessionID, ledger cost.LedgerAPI) error {
		_, err := agrank.BootstrapSession(a, s, p, ledger, opts)
		return err
	}
	events, err := workload.PoissonSchedule(workload.ChurnConfig{
		Seed:            seed,
		HorizonS:        horizonS,
		ArrivalRatePerS: 1.5,
		MeanHoldS:       70,
		NumSessions:     sc.NumSessions(),
		Diurnal: &workload.DiurnalConfig{
			DayS:          horizonS, // one full virtual day over the run
			Amplitude:     0.8,
			PeakFrac:      workload.FollowTheSunPeaks(regions),
			SessionRegion: homes,
		},
	})
	return ev, boot, events, err
}

// runPipelineSweep measures the serial barrier path and the pipelined
// scheduler at increasing in-flight caps over identical fixtures, best of
// two repetitions each (fresh orchestrator per repetition: the schedule
// replays identically).
func runPipelineSweep(w io.Writer, format string, fleetAgents int, horizonS float64, seed int64, meta runMeta, sink *telemetry.Sink) error {
	ev, boot, events, err := pipelineStack(fleetAgents, horizonS, seed)
	if err != nil {
		return fmt.Errorf("pipeline sweep: %w", err)
	}
	run := func(name, mode string, maxInFlight int) (pipelinePoint, error) {
		cfg := orchestrator.DefaultConfig(seed)
		cfg.Shards = 4
		cfg.LedgerShards = fleetAgents // per-agent stripes: maximal disjointness
		cfg.HopBudget = 12
		cfg.MaxReoptSessions = 4
		cfg.Core.NeighborWindow = 4
		cfg.Telemetry = sink
		if mode == "pipelined" {
			cfg.Pipeline = true
			cfg.MaxInFlight = maxInFlight
		}
		best := pipelinePoint{}
		for rep := 0; rep < 2; rep++ {
			orc, err := orchestrator.New(ev, boot, cfg)
			if err != nil {
				return best, err
			}
			start := time.Now()
			if _, err := orc.Run(events, 0); err != nil {
				orc.Close()
				return best, err
			}
			elapsed := time.Since(start)
			st := orc.Stats()
			orc.Close()
			eps := float64(st.Events) / elapsed.Seconds()
			if eps > best.EventsPerSec {
				best = pipelinePoint{
					Name:            name,
					Mode:            mode,
					MaxInFlight:     maxInFlight,
					Workers:         cfg.Shards,
					Agents:          fleetAgents,
					Events:          st.Events,
					EventsPerSec:    eps,
					NsPerEvent:      float64(elapsed.Nanoseconds()) / float64(st.Events),
					Commits:         st.Commits,
					Conflicts:       st.Conflicts,
					Rejects:         st.Rejects,
					Dropped:         st.Dropped,
					AdmissionStalls: st.AdmissionStalls,
					ReoptWaits:      st.ReoptWaits,
					QueueDepthPeak:  st.QueueDepthPeak,
					InFlightPeak:    st.InFlightPeak,
					ReoptP50Ms:      float64(st.ReoptP50) / 1e6,
					ReoptP99Ms:      float64(st.ReoptP99) / 1e6,
				}
			}
		}
		return best, nil
	}

	rep := pipelineReport{
		GeneratedBy:   "vcbench -run pipeline",
		SchemaVersion: benchSchemaVersion,
		Meta:          meta,
		Description: "Pipelined event scheduler vs the serial per-event barrier: churn events/sec over an " +
			"identical low-conflict workload (regional fleet, intra-region sessions, follow-the-sun " +
			"diurnal schedule, candidate windows, per-agent ledger stripes). The serial point is the " +
			"pre-pipeline orchestrator (Pipeline off, bit-identical to prior releases and to the " +
			"pipelined path at max_in_flight=1 by differential test); pipelined points vary only the " +
			"in-flight cap. Wall-clock scaling is bounded by hardware_parallel_ceiling — judge speedups " +
			"against it on shared-vCPU hosts.",
		Speedups: map[string]float64{},
	}
	serial, err := run("OrchestratorEvent/serial-barrier", "serial", 1)
	if err != nil {
		return fmt.Errorf("pipeline sweep: serial: %w", err)
	}
	rep.Points = append(rep.Points, serial)
	for _, inflight := range []int{1, 2, 4, 8} {
		pt, err := run(fmt.Sprintf("EventPipeline/in-flight=%d", inflight), "pipelined", inflight)
		if err != nil {
			return fmt.Errorf("pipeline sweep: in-flight %d: %w", inflight, err)
		}
		rep.Points = append(rep.Points, pt)
		if serial.EventsPerSec > 0 {
			rep.Speedups[fmt.Sprintf("EventPipeline/in-flight=%d-vs-serial", inflight)] =
				pt.EventsPerSec / serial.EventsPerSec
		}
	}
	rep.HardwareParallelCeiling = measureParallelCeiling()

	if format == "json" {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	for _, p := range rep.Points {
		fmt.Fprintf(w, "pipeline | %-32s | agents %3d | %8.1f events/sec | %4d commits | %4d conflicts | in-flight peak %d\n",
			p.Name, p.Agents, p.EventsPerSec, p.Commits, p.Conflicts, p.InFlightPeak)
	}
	for fam, sp := range rep.Speedups {
		fmt.Fprintf(w, "pipeline | speedup %-32s | %.2fx\n", fam, sp)
	}
	return nil
}
