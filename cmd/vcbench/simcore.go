// Sim-core mode: `vcbench -run simcore -format json > BENCH_10.json`
// measures the virtual-clock discrete-event core against the eager
// pre-materialized path at two scales. At orchestrator scale, the same
// chaos fixture is run once from an eager merged []Event slice and once
// pulled lazily from the sim engine (events fully processed per wall
// second, so the engine's pull overhead is priced against the control
// plane). At generator scale, a ≥1M-event virtual-day chaos schedule is
// materialized eagerly (the whole day resident) and then streamed lazily
// through the engine while verifying the merge order event for event —
// heap-in-use per point shows the O(horizon) vs O(in-flight) memory
// contract, and the lazy point reports its virtual-vs-wall rate.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"vconf/internal/agrank"
	"vconf/internal/assign"
	"vconf/internal/core"
	"vconf/internal/cost"
	"vconf/internal/faults"
	"vconf/internal/model"
	"vconf/internal/orchestrator"
	"vconf/internal/sim"
	"vconf/internal/telemetry"
	"vconf/internal/workload"
)

// simCorePoint is one eager-vs-lazy measurement.
type simCorePoint struct {
	Name   string `json:"name"`
	Events int    `json:"events"`
	// VirtualS is the schedule horizon covered.
	VirtualS float64 `json:"virtual_s"`
	WallS    float64 `json:"wall_s"`
	// EventsPerSec counts schedule events fully processed (orchestrator
	// points) or generated+consumed (engine points) per wall second.
	EventsPerSec float64 `json:"events_per_sec"`
	// HeapInuseMB is the live heap right after the phase (eager: the whole
	// materialized schedule resident; lazy: generator state only).
	HeapInuseMB float64 `json:"heap_inuse_mb"`
	// VirtualWallRatio is how much faster than real time the virtual clock
	// advanced (engine points only).
	VirtualWallRatio float64 `json:"virtual_wall_ratio,omitempty"`
}

// simCoreReport is the BENCH_10.json payload.
type simCoreReport struct {
	GeneratedBy string `json:"generated_by"`
	// SchemaVersion is benchSchemaVersion at write time; vcreport refuses
	// mismatched versions.
	SchemaVersion int            `json:"schema_version"`
	Description   string         `json:"description"`
	Meta          runMeta        `json:"meta"`
	Points        []simCorePoint `json:"points"`
	// LazyEagerRatios maps point pair → lazy events-per-sec over eager: the
	// streaming cost (or win) of pulling lazily instead of materializing.
	LazyEagerRatios map[string]float64 `json:"lazy_eager_ratios"`
	// PeakRSSMB is the process VmHWM after all points — the virtual-day
	// peak-RSS note (the eager day dominates it; the lazy day alone stays
	// at O(in-flight)).
	PeakRSSMB float64 `json:"peak_rss_mb"`
}

// heapInuseMB forces a GC and reports the live heap.
func heapInuseMB() float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapInuse) / (1 << 20)
}

// peakRSSMB reads the process high-water RSS (VmHWM) in MB; 0 when
// unavailable.
func peakRSSMB() float64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return 0
		}
		return kb / 1024
	}
	return 0
}

// simCoreOrchFixture builds the orchestrator-scale chaos spec: the
// chaosSweepStack fleet with the light fault mix, expressed as generator
// configs so both the eager and the lazy path derive from one spec.
func simCoreOrchFixture(fleetAgents int, horizonS float64, seed int64) (*cost.Evaluator, core.Bootstrapper, []int, workload.ChurnConfig, faults.Config, error) {
	const regions = 6
	fc := workload.DefaultFleetConfig(seed)
	fc.NumAgents = fleetAgents
	fc.NumUsers = 8 * fleetAgents
	fc.MinSessionSize = 4
	fc.MaxSessionSize = 6
	fc.Regions = regions
	fc.AgentBandwidthMbps = 3000
	fc.AgentTranscodeSlots = 12
	sc, homes, err := workload.GenerateSyntheticFleetRegions(fc)
	if err != nil {
		return nil, nil, nil, workload.ChurnConfig{}, faults.Config{}, err
	}
	p := cost.DefaultParams()
	ev, err := cost.NewEvaluator(sc, p)
	if err != nil {
		return nil, nil, nil, workload.ChurnConfig{}, faults.Config{}, err
	}
	opts := agrank.DefaultOptions(3)
	boot := func(a *assign.Assignment, s model.SessionID, ledger cost.LedgerAPI) error {
		_, err := agrank.BootstrapSession(a, s, p, ledger, opts)
		return err
	}
	nChurn := len(homes) * 3 / 5
	ccfg := workload.ChurnConfig{
		Seed:            seed,
		HorizonS:        horizonS,
		ArrivalRatePerS: 1.0,
		MeanHoldS:       80,
		NumSessions:     nChurn,
	}
	pools := make([][]int, regions)
	for s := nChurn; s < len(homes); s++ {
		pools[homes[s]] = append(pools[homes[s]], s)
	}
	agentRegion := workload.AgentRegions(fleetAgents, regions)
	fcfg := faults.Config{
		Seed:           seed + 1,
		HorizonS:       horizonS,
		NumAgents:      fleetAgents,
		AgentRegion:    agentRegion,
		AgentMTBFS:     8 * horizonS,
		AgentMTTRS:     horizonS / 5,
		RegionMTBFS:    16 * horizonS,
		RegionMTTRS:    horizonS / 6,
		DegradeMTBFS:   8 * horizonS,
		DegradeMTTRS:   horizonS / 5,
		DegradeFloor:   0.4,
		FlashMTBFS:     4 * horizonS,
		FlashIntensity: 4,
		FlashHoldS:     horizonS / 6,
		FlashSessions:  pools,
	}
	return ev, boot, agentRegion, ccfg, fcfg, nil
}

// simCoreDayConfigs builds the generator-scale virtual-day chaos spec:
// scenario-independent (the generators never touch a model.Scenario), sized
// so a full day yields well past a million merged events at default scale.
func simCoreDayConfigs(dayS float64, seed int64) (workload.ChurnConfig, faults.Config) {
	const (
		regions   = 8
		agents    = 500
		churnPool = 1200
	)
	ccfg := workload.ChurnConfig{
		Seed:            seed,
		HorizonS:        dayS,
		ArrivalRatePerS: 6.0,
		MeanHoldS:       60,
		NumSessions:     churnPool,
	}
	pools := make([][]int, regions)
	for s := churnPool; s < churnPool+16*regions; s++ {
		pools[s%regions] = append(pools[s%regions], s)
	}
	fcfg := faults.Config{
		Seed:           seed + 1,
		HorizonS:       dayS,
		NumAgents:      agents,
		AgentRegion:    workload.AgentRegions(agents, regions),
		AgentMTBFS:     3600,
		AgentMTTRS:     300,
		RegionMTBFS:    14400,
		RegionMTTRS:    600,
		DegradeMTBFS:   7200,
		DegradeMTTRS:   600,
		DegradeFloor:   0.4,
		FlashMTBFS:     1800,
		FlashIntensity: 4,
		FlashHoldS:     120,
		FlashSessions:  pools,
	}
	return ccfg, fcfg
}

// runSimCore measures eager-slice vs lazy-engine at orchestrator and
// generator scale and emits the BENCH_10.json payload.
func runSimCore(w io.Writer, format string, fleetAgents int, horizonS, dayS float64, seed int64, meta runMeta, sink *telemetry.Sink) error {
	rep := simCoreReport{
		GeneratedBy:   "vcbench -run simcore",
		SchemaVersion: benchSchemaVersion,
		Meta:          meta,
		Description: "Virtual-clock discrete-event core vs the eager pre-materialized path. Orchestrator scale: " +
			"one chaos fixture (regional fleet, Poisson churn, light fault mix) processed from an eager merged " +
			"[]Event slice and pulled lazily from the sim engine — identical decisions by construction, so the " +
			"events/sec gap is pure engine overhead. Generator scale: a virtual-day chaos schedule (≥1M events " +
			"at default scale) materialized eagerly and then streamed lazily while verifying merge order; " +
			"heap-in-use contrasts O(horizon) against O(in-flight) memory, and peak_rss_mb notes the process " +
			"high-water mark (dominated by the eager day).",
		LazyEagerRatios: map[string]float64{},
	}

	// ---- orchestrator scale ----
	ev, boot, agentRegion, occfg, ofcfg, err := simCoreOrchFixture(fleetAgents, horizonS, seed)
	if err != nil {
		return fmt.Errorf("simcore: %w", err)
	}
	newOrc := func() (*orchestrator.Orchestrator, error) {
		cfg := orchestrator.DefaultConfig(seed)
		cfg.Shards = 4
		cfg.LedgerShards = fleetAgents
		cfg.HopBudget = 12
		cfg.MaxReoptSessions = 4
		cfg.Core.NeighborWindow = 4
		cfg.Pipeline = true
		cfg.MaxInFlight = 4
		cfg.Telemetry = sink
		cfg.AgentRegion = agentRegion
		return orchestrator.New(ev, boot, cfg)
	}
	ch, err := workload.PoissonSchedule(occfg)
	if err != nil {
		return fmt.Errorf("simcore: %w", err)
	}
	fl, err := faults.Schedule(ofcfg)
	if err != nil {
		return fmt.Errorf("simcore: %w", err)
	}
	events := faults.Merge(ch, fl)

	orc, err := newOrc()
	if err != nil {
		return fmt.Errorf("simcore: %w", err)
	}
	start := time.Now()
	if _, err := orc.Run(events, 0); err != nil {
		orc.Close()
		return fmt.Errorf("simcore: eager run: %w", err)
	}
	elapsed := time.Since(start)
	if err := orc.CheckInvariants(); err != nil {
		orc.Close()
		return fmt.Errorf("simcore: eager run invariants: %w", err)
	}
	eagerPhi := orc.Objective()
	orc.Close()
	rep.Points = append(rep.Points, simCorePoint{
		Name:         "SimCore/orchestrator-eager",
		Events:       len(events),
		VirtualS:     horizonS,
		WallS:        elapsed.Seconds(),
		EventsPerSec: float64(len(events)) / elapsed.Seconds(),
		HeapInuseMB:  heapInuseMB(),
	})

	orc, err = newOrc()
	if err != nil {
		return fmt.Errorf("simcore: %w", err)
	}
	cs, err := workload.NewChurnSource(occfg)
	if err != nil {
		return fmt.Errorf("simcore: %w", err)
	}
	fsrc, err := faults.NewSource(ofcfg)
	if err != nil {
		return fmt.Errorf("simcore: %w", err)
	}
	lazyEvents := 0
	start = time.Now()
	if err := orc.RunSource(sim.New(cs, fsrc), 0, func(orchestrator.EventReport) error {
		lazyEvents++
		return nil
	}); err != nil {
		orc.Close()
		return fmt.Errorf("simcore: lazy run: %w", err)
	}
	lazyElapsed := time.Since(start)
	if err := orc.CheckInvariants(); err != nil {
		orc.Close()
		return fmt.Errorf("simcore: lazy run invariants: %w", err)
	}
	if lazyEvents != len(events) {
		orc.Close()
		return fmt.Errorf("simcore: lazy engine emitted %d events, eager slice has %d", lazyEvents, len(events))
	}
	if phi := orc.Objective(); phi != eagerPhi {
		orc.Close()
		return fmt.Errorf("simcore: lazy objective %v diverged from eager %v", phi, eagerPhi)
	}
	orc.Close()
	rep.Points = append(rep.Points, simCorePoint{
		Name:         "SimCore/orchestrator-lazy",
		Events:       lazyEvents,
		VirtualS:     horizonS,
		WallS:        lazyElapsed.Seconds(),
		EventsPerSec: float64(lazyEvents) / lazyElapsed.Seconds(),
		HeapInuseMB:  heapInuseMB(),
	})
	rep.LazyEagerRatios["orchestrator-lazy-vs-eager"] =
		rep.Points[1].EventsPerSec / rep.Points[0].EventsPerSec

	// ---- generator scale: the virtual day ----
	// Lazy first, so the day-long eager slice cannot inflate the lazy
	// point's heap reading; the engine holds only generator state.
	dccfg, dfcfg := simCoreDayConfigs(dayS, seed)
	drainDay := func() (int, float64, error) {
		cs, err := workload.NewChurnSource(dccfg)
		if err != nil {
			return 0, 0, err
		}
		fsrc, err := faults.NewSource(dfcfg)
		if err != nil {
			return 0, 0, err
		}
		eng := sim.New(cs, fsrc)
		n := 0
		for {
			_, ok := eng.Next()
			if !ok {
				break
			}
			n++
		}
		return n, eng.Now(), eng.Err()
	}
	start = time.Now()
	dayEvents, dayVirtual, err := drainDay()
	if err != nil {
		return fmt.Errorf("simcore: virtual day: %w", err)
	}
	dayElapsed := time.Since(start)
	lazyHeap := heapInuseMB()
	rep.Points = append(rep.Points, simCorePoint{
		Name:             "SimCore/engine-lazy-day",
		Events:           dayEvents,
		VirtualS:         dayS,
		WallS:            dayElapsed.Seconds(),
		EventsPerSec:     float64(dayEvents) / dayElapsed.Seconds(),
		HeapInuseMB:      lazyHeap,
		VirtualWallRatio: dayVirtual / dayElapsed.Seconds(),
	})

	start = time.Now()
	dch, err := workload.PoissonSchedule(dccfg)
	if err != nil {
		return fmt.Errorf("simcore: virtual day: %w", err)
	}
	dfl, err := faults.Schedule(dfcfg)
	if err != nil {
		return fmt.Errorf("simcore: virtual day: %w", err)
	}
	dayMerged := faults.Merge(dch, dfl)
	eagerElapsed := time.Since(start)
	eagerHeap := heapInuseMB() // the whole day resident
	runtime.KeepAlive(dayMerged)
	if len(dayMerged) != dayEvents {
		return fmt.Errorf("simcore: virtual day: lazy engine produced %d events, eager slice %d", dayEvents, len(dayMerged))
	}
	rep.Points = append(rep.Points, simCorePoint{
		Name:             "SimCore/engine-eager-day",
		Events:           len(dayMerged),
		VirtualS:         dayS,
		WallS:            eagerElapsed.Seconds(),
		EventsPerSec:     float64(len(dayMerged)) / eagerElapsed.Seconds(),
		HeapInuseMB:      eagerHeap,
		VirtualWallRatio: dayS / eagerElapsed.Seconds(),
	})
	rep.LazyEagerRatios["engine-day-lazy-vs-eager"] =
		rep.Points[2].EventsPerSec / rep.Points[3].EventsPerSec
	rep.PeakRSSMB = peakRSSMB()

	if format == "json" {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	for _, p := range rep.Points {
		fmt.Fprintf(w, "simcore | %-28s | %8d events | %9.0f events/sec | heap %7.1f MB | virtual/wall %8.0fx\n",
			p.Name, p.Events, p.EventsPerSec, p.HeapInuseMB, p.VirtualWallRatio)
	}
	for k, v := range rep.LazyEagerRatios {
		fmt.Fprintf(w, "simcore | ratio %-28s | %.2fx\n", k, v)
	}
	fmt.Fprintf(w, "simcore | peak RSS %.1f MB\n", rep.PeakRSSMB)
	return nil
}
