package vconf

import (
	"vconf/internal/orchestrator"
	"vconf/internal/workload"
)

// ChurnConfig parameterizes a Poisson session-churn process: arrivals at
// rate λ, exponential session lifetimes, over the scenario's session pool
// (the continuous generalization of Fig. 5's fixed arrival/departure
// batches).
type ChurnConfig = workload.ChurnConfig

// ChurnEvent is one session arrival or departure at a virtual time.
type ChurnEvent = workload.Event

// ChurnEventKind distinguishes arrivals from departures.
type ChurnEventKind = workload.EventKind

// Churn event kinds.
const (
	ChurnArrival   = workload.EventArrival
	ChurnDeparture = workload.EventDeparture
)

// GenerateChurn builds a deterministic (seeded) churn schedule: Poisson
// arrivals, exponential hold times, departed sessions returning to the idle
// pool for reuse. Events are returned in time order.
func GenerateChurn(cfg ChurnConfig) ([]ChurnEvent, error) {
	return workload.PoissonSchedule(cfg)
}

// Orchestrator is the online churn control plane: it consumes ChurnEvent
// streams, maintains the live assignment, and re-optimizes incrementally on
// a sharded solver pool, mirroring accepted moves to an attached data-plane
// Runtime as dual-feed migrations (see the orchestrator package
// documentation for the architecture).
type Orchestrator = orchestrator.Orchestrator

// OrchestratorConfig tunes the orchestrator: Shards sets the solver worker
// count, LedgerShards the capacity-ledger stripe count (0 = one ID-range
// shard per worker via the lock-striped internal/shard pipeline, -1 = the
// legacy single-lock commit path kept for differential benchmarks),
// CommitRetries the bounded retry budget after cross-shard commit races,
// plus the per-task hop budget, touched-set cap, N_ngbr candidate window
// (Core.NeighborWindow) and the refinement chain parameters. Pipeline
// switches event handling onto the dependency-aware scheduler
// (internal/pipeline) so churn events with disjoint conflict footprints
// overlap end-to-end, bounded by MaxInFlight and widened by
// FootprintSlack; reports still arrive in schedule order.
type OrchestratorConfig = orchestrator.Config

// OrchestratorStats aggregates orchestrator activity counters.
type OrchestratorStats = orchestrator.Stats

// ChurnEventReport describes the handling of one churn event: admission
// outcome, re-optimized sessions, commit counts, re-optimization latency
// and the post-event objective.
type ChurnEventReport = orchestrator.EventReport

// DefaultOrchestratorConfig returns the orchestrator defaults (GOMAXPROCS
// shards, 24-hop refinement budget) over the paper's chain settings.
func DefaultOrchestratorConfig(seed int64) OrchestratorConfig {
	return orchestrator.DefaultConfig(seed)
}

// NewOrchestrator builds an online churn orchestrator over the solver's
// scenario, objective and bootstrap policy. The orchestrator starts with no
// live sessions; drive it with HandleEvent or Run over a GenerateChurn
// schedule, and call Close when done.
func (s *Solver) NewOrchestrator(cfg OrchestratorConfig) (*Orchestrator, error) {
	return orchestrator.New(s.ev, s.bootstrapper(), cfg)
}

// FullResolve runs a from-scratch re-solve over the given active session
// set for durationS virtual seconds — the offline oracle incremental
// re-optimization is judged against. Returns the oracle assignment and its
// objective over the active set.
func (s *Solver) FullResolve(active []SessionID, durationS float64) (*Assignment, float64, error) {
	return orchestrator.Oracle(s.ev, active, s.bootstrapper(), s.coreConfig(), durationS)
}
