package vconf

import (
	"vconf/internal/faults"
	"vconf/internal/orchestrator"
	"vconf/internal/workload"
)

// Fault event kinds, carried on ChurnEvent.Kind alongside arrivals and
// departures. The orchestrator heals them in-line: failures orphan the
// affected sessions and evacuate them through the re-optimization pipeline,
// recoveries trigger a re-balance of the sessions that can now reach the
// restored capacity.
const (
	FaultAgentFail       = workload.EventAgentFail
	FaultAgentRecover    = workload.EventAgentRecover
	FaultRegionOutage    = workload.EventRegionOutage
	FaultRegionRecover   = workload.EventRegionRecover
	FaultCapacityDegrade = workload.EventCapacityDegrade
	FaultFlashCrowd      = workload.EventFlashCrowd
)

// FaultConfig parameterizes the seeded fault-injection engine: per-agent
// MTBF/MTTR failure renewals, correlated regional outages, partial capacity
// degradations, and per-region flash crowds bursting from reserved session
// pools (see internal/faults for the fault model and determinism
// guarantees).
type FaultConfig = faults.Config

// GenerateFaults builds a deterministic fault schedule: the same seed and
// config always yield byte-identical events, and each fault process draws
// from an independent sub-stream, so enabling one never shifts another.
// Merge with a churn schedule via MergeSchedules.
func GenerateFaults(cfg FaultConfig) ([]ChurnEvent, error) { return faults.Schedule(cfg) }

// MergeSchedules stably interleaves two time-ordered schedules (ties keep
// a's events first) — e.g. Poisson churn plus a fault schedule into one
// orchestrator input.
func MergeSchedules(a, b []ChurnEvent) []ChurnEvent { return faults.Merge(a, b) }

// AgentRegions returns the agent → region map of a regional synthetic fleet
// (agent i lives in region i mod regions) — the map FaultConfig.AgentRegion
// and OrchestratorConfig.AgentRegion consume.
func AgentRegions(numAgents, regions int) []int { return workload.AgentRegions(numAgents, regions) }

// FullResolveDegraded is FullResolve over a degraded fleet: scales[l] is
// agent l's effective capacity scale (nil ⇒ all healthy), matching
// Orchestrator.CapacityScales — the from-scratch yardstick a healed
// post-incident state is judged against.
func (s *Solver) FullResolveDegraded(active []SessionID, durationS float64, scales []float64) (*Assignment, float64, error) {
	return orchestrator.OracleDegraded(s.ev, active, s.bootstrapper(), s.coreConfig(), durationS, scales)
}
