package vconf

import (
	"testing"
)

func TestGenerateChurnDeterministic(t *testing.T) {
	cfg := ChurnConfig{
		Seed:            3,
		HorizonS:        200,
		ArrivalRatePerS: 0.1,
		MeanHoldS:       60,
		NumSessions:     8,
	}
	a, err := GenerateChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("schedules diverge: %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d diverges: %+v vs %+v", i, a[i], b[i])
		}
	}
	last := 0.0
	for _, e := range a {
		if e.TimeS < last {
			t.Fatalf("events out of order at %v", e.TimeS)
		}
		last = e.TimeS
		if e.Kind != ChurnArrival && e.Kind != ChurnDeparture {
			t.Fatalf("invalid kind %v", e.Kind)
		}
	}
	if _, err := GenerateChurn(ChurnConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestTelemetryViaFacade(t *testing.T) {
	sc := smallScenario(t, 21)
	solver, err := NewSolver(sc, WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	events, err := GenerateChurn(ChurnConfig{
		Seed:            21,
		HorizonS:        150,
		ArrivalRatePerS: 0.1,
		MeanHoldS:       80,
		NumSessions:     sc.NumSessions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sink := NewTelemetry(TelemetryConfig{TraceCapacity: len(events) + 1})
	cfg := DefaultOrchestratorConfig(21)
	cfg.Telemetry = sink
	orc, err := solver.NewOrchestrator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer orc.Close()
	if _, err := orc.Run(events, 150); err != nil {
		t.Fatal(err)
	}
	recs := sink.Recorder().Records()
	if len(recs) != len(events) {
		t.Fatalf("%d trace records for %d events", len(recs), len(events))
	}
	srv, err := ServeTelemetry(sink, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Addr() == "" {
		t.Fatal("server reported no address")
	}
}

func TestOrchestratorViaFacade(t *testing.T) {
	sc := smallScenario(t, 9)
	solver, err := NewSolver(sc, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	events, err := GenerateChurn(ChurnConfig{
		Seed:            9,
		HorizonS:        150,
		ArrivalRatePerS: 0.1,
		MeanHoldS:       80,
		NumSessions:     sc.NumSessions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	orc, err := solver.NewOrchestrator(DefaultOrchestratorConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	defer orc.Close()
	rt, err := solver.NewRuntime(DefaultRuntimeConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	orc.AttachRuntime(rt)

	reports, err := orc.Run(events, 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(events) {
		t.Fatalf("%d reports for %d events", len(reports), len(events))
	}
	if err := orc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := orc.Stats()
	if st.Arrivals == 0 || st.Tasks == 0 {
		t.Fatalf("facade run did no work: %+v", st)
	}

	active := orc.ActiveSessions()
	if len(active) == 0 {
		t.Skip("no live sessions at horizon for this seed")
	}
	_, oraclePhi, err := solver.FullResolve(active, 150)
	if err != nil {
		t.Fatal(err)
	}
	if online := orc.Objective(); online > oraclePhi*1.10 {
		t.Fatalf("online objective %.2f exceeds 110%% of oracle %.2f", online, oraclePhi)
	}
}
