// Package vconf is a cost-effective low-delay cloud video-conferencing
// control plane: a Go reproduction of Hajiesmaili et al., "Cost-Effective
// Low-Delay Cloud Video Conferencing" (IEEE ICDCS 2015).
//
// The library jointly decides (1) which cloud agent every conferencing user
// subscribes to and (2) which agent transcodes every stream that needs
// format/bitrate conversion, minimizing the provider's bandwidth and
// transcoding cost together with the users' end-to-end delay, subject to
// per-agent capacities and the 400 ms ITU-T G.114 delay cap.
//
// Typical use:
//
//	sc, _ := vconf.GenerateWorkload(vconf.LargeScaleWorkload(1))
//	solver, _ := vconf.NewSolver(sc, vconf.WithSeed(1))
//	res, _ := solver.Optimize(200) // bootstrap with AgRank, run Alg. 1
//	fmt.Println(res.Report.InterTraffic, res.Report.MeanDelayMS)
//
// For long-running deployments under session churn, the online
// orchestrator consumes arrival/departure schedules and re-optimizes
// incrementally on a sharded solver pool:
//
//	events, _ := vconf.GenerateChurn(vconf.ChurnConfig{Seed: 1, HorizonS: 300,
//		ArrivalRatePerS: 0.1, MeanHoldS: 90, NumSessions: sc.NumSessions()})
//	orc, _ := solver.NewOrchestrator(vconf.DefaultOrchestratorConfig(1))
//	defer orc.Close()
//	reports, _ := orc.Run(events, 300)
//
// The package is a thin facade over the internal packages:
//
//	internal/core         Markov approximation engines (Alg. 1)
//	internal/agrank       AgRank bootstrap (Alg. 2)
//	internal/baseline     Nrst nearest-assignment baseline
//	internal/cost         traffic/delay/objective model (§III) + delta evaluation
//	internal/exact        exhaustive ground truth for small instances
//	internal/confsim      data-plane runtime with dual-feed migration
//	internal/orchestrator online churn control plane (sharded incremental re-optimization)
//	internal/dist         Alg. 1 as a TCP FREEZE/COMMIT protocol
//	internal/workload, internal/netsim, internal/transcode  substrates
package vconf

import (
	"fmt"

	"vconf/internal/agrank"
	"vconf/internal/assign"
	"vconf/internal/baseline"
	"vconf/internal/core"
	"vconf/internal/cost"
	"vconf/internal/model"
	"vconf/internal/workload"
)

// Re-exported model vocabulary. The aliases expose the full method sets of
// the internal types as the public API.
type (
	// Scenario is an immutable problem instance: users, sessions, agents
	// and delay matrices.
	Scenario = model.Scenario
	// ScenarioBuilder assembles scenarios incrementally.
	ScenarioBuilder = model.Builder
	// Agent is a cloud conferencing agent (VM) with capacities and a
	// transcoding-latency profile.
	Agent = model.Agent
	// User is a conferencing participant.
	User = model.User
	// Session groups users of one conference.
	Session = model.Session
	// Flow is a directed stream between two users of a session.
	Flow = model.Flow
	// Representation indexes a video format/bitrate configuration.
	Representation = model.Representation
	// RepSpec names a representation and its bitrate.
	RepSpec = model.RepSpec
	// RepresentationSet is the ordered set of representations in use.
	RepresentationSet = model.RepresentationSet
	// UserID, SessionID and AgentID are dense indices into a scenario.
	UserID    = model.UserID
	SessionID = model.SessionID
	AgentID   = model.AgentID

	// Assignment is one solution {λ, γ}: user subscriptions plus
	// transcoding placements.
	Assignment = assign.Assignment
	// Decision is a single-variable change between assignments.
	Decision = assign.Decision

	// Params weights the UAP objective (α1 delay, α2 traffic, α3
	// transcoding) and selects cost shapes.
	Params = cost.Params
	// SystemReport summarizes an assignment: objective, inter-agent
	// traffic, transcoding tasks, delay statistics.
	SystemReport = cost.SystemReport
	// SessionReport is the per-session analogue.
	SessionReport = cost.SessionReport

	// WorkloadConfig parameterizes random scenario generation.
	WorkloadConfig = workload.Config

	// EngineSample is one engine observation over virtual time.
	EngineSample = core.Sample
)

// NewScenarioBuilder starts building a scenario; nil selects the default
// 360p/480p/720p/1080p representation set.
func NewScenarioBuilder(reps *RepresentationSet) *ScenarioBuilder {
	return model.NewBuilder(reps)
}

// DefaultRepresentations returns the paper's four YouTube-style
// representations.
func DefaultRepresentations() *RepresentationSet { return model.DefaultRepresentations() }

// DefaultParams returns the balanced α1 = α2 = α3 = 1 objective.
func DefaultParams() Params { return cost.DefaultParams() }

// TrafficOnlyParams returns the α1 = 0 operational-cost-only objective.
func TrafficOnlyParams() Params { return cost.TrafficOnlyParams() }

// DelayOnlyParams returns the α2 = α3 = 0 delay-only objective.
func DelayOnlyParams() Params { return cost.DelayOnlyParams() }

// LargeScaleWorkload returns the paper's §V-B Internet-scale workload
// configuration (7 agents, 200 users of 256 nodes, sessions ≤ 5).
func LargeScaleWorkload(seed int64) WorkloadConfig { return workload.LargeScale(seed) }

// PrototypeWorkload returns the §V-A prototype-scale configuration
// (6 agents, ≈10 sessions of 3–5 users).
func PrototypeWorkload(seed int64) WorkloadConfig { return workload.Prototype(seed) }

// GenerateWorkload builds a random scenario from a workload configuration.
func GenerateWorkload(cfg WorkloadConfig) (*Scenario, error) { return workload.Generate(cfg) }

// InitPolicy selects the bootstrap algorithm of a Solver.
type InitPolicy int

const (
	// InitAgRank bootstraps with AgRank (Alg. 2) — the paper's recommended
	// initialization.
	InitAgRank InitPolicy = iota + 1
	// InitNearest bootstraps with the Nrst baseline (Airlift/vSkyConf).
	InitNearest
)

// Solver couples a scenario with the optimization pipeline: bootstrap
// (AgRank or Nrst) followed by the Markov approximation engine.
type Solver struct {
	sc     *Scenario
	params Params
	ev     *cost.Evaluator

	seed       int64
	beta       float64
	scale      float64
	countdownS float64
	init       InitPolicy
	nngbr      int
}

// Option customizes a Solver.
type Option func(*Solver) error

// WithParams sets the objective weights.
func WithParams(p Params) Option {
	return func(s *Solver) error {
		if err := p.Validate(); err != nil {
			return err
		}
		s.params = p
		return nil
	}
}

// WithSeed seeds all randomness (default 1).
func WithSeed(seed int64) Option {
	return func(s *Solver) error { s.seed = seed; return nil }
}

// WithBeta sets β (default 400, the paper's choice).
func WithBeta(beta float64) Option {
	return func(s *Solver) error {
		if beta <= 0 {
			return fmt.Errorf("vconf: beta must be positive")
		}
		s.beta = beta
		return nil
	}
}

// WithObjectiveScale sets the Φ scaling applied before β (default 0.01; see
// the core package documentation).
func WithObjectiveScale(scale float64) Option {
	return func(s *Solver) error {
		if scale <= 0 {
			return fmt.Errorf("vconf: objective scale must be positive")
		}
		s.scale = scale
		return nil
	}
}

// WithCountdown sets the mean WAIT countdown in virtual seconds (default 10,
// the paper's prototype value).
func WithCountdown(seconds float64) Option {
	return func(s *Solver) error {
		if seconds <= 0 {
			return fmt.Errorf("vconf: countdown must be positive")
		}
		s.countdownS = seconds
		return nil
	}
}

// WithInit selects the bootstrap policy (default AgRank with n_ngbr = 2).
func WithInit(policy InitPolicy, nngbr int) Option {
	return func(s *Solver) error {
		switch policy {
		case InitAgRank:
			if nngbr < 1 {
				return fmt.Errorf("vconf: AgRank needs n_ngbr ≥ 1")
			}
		case InitNearest:
		default:
			return fmt.Errorf("vconf: unknown init policy %d", policy)
		}
		s.init = policy
		s.nngbr = nngbr
		return nil
	}
}

// NewSolver builds a solver for the scenario.
func NewSolver(sc *Scenario, opts ...Option) (*Solver, error) {
	s := &Solver{
		sc:         sc,
		params:     cost.DefaultParams(),
		seed:       1,
		beta:       400,
		scale:      0.01,
		countdownS: 10,
		init:       InitAgRank,
		nngbr:      2,
	}
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	ev, err := cost.NewEvaluator(sc, s.params)
	if err != nil {
		return nil, err
	}
	s.ev = ev
	return s, nil
}

// Params returns the solver's objective parameters.
func (s *Solver) Params() Params { return s.params }

// bootstrapper builds the per-session bootstrap hook.
func (s *Solver) bootstrapper() core.Bootstrapper {
	if s.init == InitNearest {
		return func(a *assign.Assignment, sid model.SessionID, ledger cost.LedgerAPI) error {
			return baseline.AssignSessionNearest(a, sid, s.params, ledger)
		}
	}
	opts := agrank.DefaultOptions(s.nngbr)
	return func(a *assign.Assignment, sid model.SessionID, ledger cost.LedgerAPI) error {
		_, err := agrank.BootstrapSession(a, sid, s.params, ledger, opts)
		return err
	}
}

// Bootstrap admits every session under the configured init policy and
// returns the initial assignment without running the chain.
func (s *Solver) Bootstrap() (*Assignment, error) {
	a := assign.New(s.sc)
	ledger := cost.NewLedger(s.sc)
	boot := s.bootstrapper()
	for sid := 0; sid < s.sc.NumSessions(); sid++ {
		if err := boot(a, model.SessionID(sid), ledger); err != nil {
			return nil, fmt.Errorf("vconf: bootstrap: %w", err)
		}
	}
	return a, nil
}

// Result is the outcome of an optimization run.
type Result struct {
	// Assignment is the final state.
	Assignment *Assignment
	// Initial and Report evaluate the bootstrap and final assignments.
	Initial SystemReport
	Report  SystemReport
	// Samples traces the run (one sample per hop plus endpoints).
	Samples []EngineSample
	// Hops and Moves count chain activity.
	Hops, Moves int
}

// Optimize bootstraps every session and runs Alg. 1 for durationS virtual
// seconds, returning the final assignment and its evaluation.
func (s *Solver) Optimize(durationS float64) (*Result, error) {
	if durationS <= 0 {
		return nil, fmt.Errorf("vconf: duration must be positive")
	}
	cfg := core.Config{
		Beta:           s.beta,
		ObjectiveScale: s.scale,
		MeanCountdownS: s.countdownS,
		Mode:           core.PaperHop,
		Seed:           s.seed,
	}
	eng, err := core.NewEngine(s.ev, cfg)
	if err != nil {
		return nil, err
	}
	boot := s.bootstrapper()
	for sid := 0; sid < s.sc.NumSessions(); sid++ {
		if err := eng.ActivateSession(model.SessionID(sid), boot); err != nil {
			return nil, fmt.Errorf("vconf: optimize: %w", err)
		}
	}
	initial := s.ev.ReportSystem(eng.Assignment())
	samples, err := eng.Run(durationS, 0)
	if err != nil {
		return nil, err
	}
	final := eng.Assignment()
	res := &Result{
		Assignment: final,
		Initial:    initial,
		Report:     s.ev.ReportSystem(final),
		Samples:    samples,
	}
	res.Hops, res.Moves = eng.Hops()
	return res, nil
}

// Evaluate reports any complete assignment under the solver's objective.
func (s *Solver) Evaluate(a *Assignment) SystemReport { return s.ev.ReportSystem(a) }

// CheckFeasible verifies an assignment against constraints (1)–(8).
func (s *Solver) CheckFeasible(a *Assignment) error { return s.ev.CheckFeasible(a) }
