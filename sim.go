package vconf

import (
	"io"

	"vconf/internal/faults"
	"vconf/internal/sim"
	"vconf/internal/workload"
)

// Virtual-clock discrete-event core (see internal/sim). Instead of
// materializing a whole churn+fault schedule up front, lazy pull-based
// sources generate events on demand and the engine merges them in
// deterministic order (time, then event rank, then source registration
// order) under a virtual clock — memory stays O(in-flight) however long
// the horizon, and the stream is bit-identical to the eager
// GenerateChurn/GenerateFaults/MergeSchedules path for the same configs.
// Orchestrator.RunSource consumes an engine (or a TraceReplayer) directly.

// SimEventSource is the pull contract lazy generators satisfy: events in
// non-decreasing time order, ok=false at exhaustion.
type SimEventSource = sim.EventSource

// SimEngine merges any number of lazy sources into one deterministic
// time-ordered stream under a virtual clock.
type SimEngine = sim.Engine

// NewSimEngine builds an engine over the given sources. Registration order
// is the final tie-breaker for simultaneous events of equal rank.
func NewSimEngine(sources ...SimEventSource) *SimEngine { return sim.New(sources...) }

// NewChurnEventSource is the lazy counterpart of GenerateChurn: it yields
// the exact same event stream without materializing it.
func NewChurnEventSource(cfg ChurnConfig) (SimEventSource, error) {
	return workload.NewChurnSource(cfg)
}

// NewFaultEventSource is the lazy counterpart of GenerateFaults.
func NewFaultEventSource(cfg FaultConfig) (SimEventSource, error) { return faults.NewSource(cfg) }

// NewSliceEventSource adapts an eager, time-ordered []ChurnEvent slice to
// the source contract, so recorded or hand-built schedules feed the engine.
func NewSliceEventSource(events []ChurnEvent) SimEventSource { return sim.NewSliceSource(events) }

// TraceDigest is the per-event decision fingerprint carried in a trace:
// the post-event objective Φ (bit-exact), active sessions and commits.
type TraceDigest = sim.Digest

// TraceRecorder tees a merged event stream plus decision digests to a
// versioned JSONL trace (vcsim -record-trace writes one).
type TraceRecorder = sim.Recorder

// NewTraceRecorder writes the trace header and returns the recorder.
func NewTraceRecorder(w io.Writer) (*TraceRecorder, error) { return sim.NewRecorder(w) }

// TraceReplayer feeds a recorded trace back as a SimEventSource and checks
// each retiring decision digest against the recording; the first mismatch
// is reported as a TraceDivergence.
type TraceReplayer = sim.Replayer

// NewTraceReplayer validates the trace header and returns the replayer.
func NewTraceReplayer(r io.Reader) (*TraceReplayer, error) { return sim.NewReplayer(r) }

// TraceDivergence is the first decision mismatch of a replay or a
// trace-vs-trace comparison; it satisfies error.
type TraceDivergence = sim.Divergence

// CompareTraces reads two recorded traces in lockstep (O(1) memory) and
// returns the first divergence (nil when equivalent) plus the number of
// records compared.
func CompareTraces(a, b io.Reader) (*TraceDivergence, uint64, error) { return sim.CompareTraces(a, b) }
