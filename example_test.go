package vconf_test

import (
	"bytes"
	"fmt"

	"vconf"
)

// ExampleNewSolver shows the three-line happy path: generate a workload,
// solve it, inspect the result.
func ExampleNewSolver() {
	sc, err := vconf.GenerateWorkload(vconf.PrototypeWorkload(1))
	if err != nil {
		fmt.Println("workload:", err)
		return
	}
	solver, err := vconf.NewSolver(sc, vconf.WithSeed(1))
	if err != nil {
		fmt.Println("solver:", err)
		return
	}
	res, err := solver.Optimize(120)
	if err != nil {
		fmt.Println("optimize:", err)
		return
	}
	fmt.Println("assignment complete:", res.Assignment.Complete())
	fmt.Println("improved or equal:", res.Report.Objective <= res.Initial.Objective)
	fmt.Println("within delay cap:", res.Report.AllDelayOK)
	// Output:
	// assignment complete: true
	// improved or equal: true
	// within delay cap: true
}

// ExampleNewScenarioBuilder builds a scenario by hand: two agents, one
// session, one transcoding demand.
func ExampleNewScenarioBuilder() {
	b := vconf.NewScenarioBuilder(nil)
	reps := b.Reps()
	r360, _ := reps.ByName("360p")
	r1080, _ := reps.ByName("1080p")

	b.AddAgent(vconf.Agent{Name: "east", Upload: 100, Download: 100, TranscodeSlots: 2})
	b.AddAgent(vconf.Agent{Name: "west", Upload: 100, Download: 100, TranscodeSlots: 2})
	s := b.AddSession("demo")
	presenter := b.AddUser("presenter", s, r1080, nil)
	viewer := b.AddUser("viewer", s, r360, nil)
	b.DemandFrom(viewer, presenter, r360) // downscale the presenter for the viewer
	b.SetInterAgentDelays([][]float64{{0, 30}, {30, 0}})
	b.SetAgentUserDelays([][]float64{{10, 40}, {40, 10}})

	sc, err := b.Build()
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	fmt.Println("users:", sc.NumUsers())
	fmt.Println("transcoding flows:", sc.ThetaSum())
	// Output:
	// users: 2
	// transcoding flows: 1
}

// ExampleSolver_Bootstrap runs only the AgRank initialization and inspects
// the feasible starting point it produces.
func ExampleSolver_Bootstrap() {
	sc, _ := vconf.Fig2Scenario()
	solver, _ := vconf.NewSolver(sc, vconf.WithInit(vconf.InitAgRank, 2))
	a, err := solver.Bootstrap()
	if err != nil {
		fmt.Println("bootstrap:", err)
		return
	}
	fmt.Println("feasible:", solver.CheckFeasible(a) == nil)
	fmt.Println("complete:", a.Complete())
	// Output:
	// feasible: true
	// complete: true
}

// ExampleSaveScenario round-trips a scenario through its JSON form —
// workloads can be checked into a repository and reloaded bit-identically.
func ExampleSaveScenario() {
	wl := vconf.PrototypeWorkload(2)
	wl.NumUsers = 12
	sc, _ := vconf.GenerateWorkload(wl)

	var buf bytes.Buffer
	if err := vconf.SaveScenario(sc, &buf); err != nil {
		fmt.Println("save:", err)
		return
	}
	reloaded, err := vconf.LoadScenario(&buf)
	if err != nil {
		fmt.Println("load:", err)
		return
	}
	fmt.Println("users preserved:", reloaded.NumUsers() == sc.NumUsers())
	fmt.Println("transcodings preserved:", reloaded.ThetaSum() == sc.ThetaSum())
	// Output:
	// users preserved: true
	// transcodings preserved: true
}
